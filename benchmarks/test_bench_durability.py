"""Durability benchmarks (ISSUE 10).

Crash-recovery cost measurements on the simulated clock, recorded to
BENCH_durability.json:

* **crash recovery** — network messages from a crashed subscriber's
  restart to full reconvergence, on the legacy path (batched
  resubscribe: one subscribe-many request plus reply envelopes) versus
  the journaled path (local replay plus one tail-sync round trip).
  The acceptance bar from the issue is asserted here: the journal must
  recover with at least **5x fewer** network messages;
* **outbox drain throughput** — notifications delivered per wire
  envelope when a mass revocation drains through the transactional
  outbox, plus the virtual time to settle.

Assertions are the acceptance bounds; raw numbers go to the JSON
artifact for tracking.
"""

import time

from benchmarks.conftest import bench_quick, record_durability
from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.credentials import RecordState
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

SURROGATES = 1024 if bench_quick() else 2048
REVOKED = 256 if bench_quick() else 512


def make_world(journaled):
    sim = Simulator()
    net = Network(sim, seed=17, default_delay=0.01)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    if journaled:
        linkage.enable_journal(login)
        linkage.enable_journal(files)
    return sim, net, linkage, login, files


def populate(login, files, count):
    host = HostOS("bench-durability")
    pairs = []
    for i in range(count):
        domain = host.create_domain()
        cert = login.enter_role(domain.client_id, "LoggedOn", (f"u{i}", "host"))
        reader = files.enter_role(domain.client_id, "Reader", credentials=(cert,))
        pairs.append((cert, reader))
    return pairs


def converged(login, files):
    for record in files.credentials.externals_of("Login"):
        if record.state is not login.credentials.state_of(record.external_ref):
            return False
    return True


def recover_and_count(journaled):
    """Crash the subscriber, restart it, and count the network messages
    it takes to reconverge on the given recovery path."""
    sim, net, linkage, login, files = make_world(journaled)
    populate(login, files, SURROGATES)
    sim.run_until(10.0)
    assert converged(login, files)

    linkage.crash(files)
    sim.run_until(15.0)
    sent_before = net.stats.messages_sent
    restart_at = sim.now
    linkage.restart(files)
    deadline = restart_at + 120.0
    while sim.now < deadline:
        masked = any(
            record.state is RecordState.UNKNOWN
            for record in files.credentials.externals_of("Login")
        )
        if not masked and converged(login, files):
            break
        sim.run_until(sim.now + 0.1)
    else:
        raise AssertionError("recovery did not converge within the budget")
    messages = net.stats.messages_sent - sent_before
    virtual = sim.now - restart_at
    replayed = 0
    if journaled:
        journal = linkage.durable.journal("Files")
        assert journal.stats.replays == 1
        replayed = journal.stats.records_replayed
        assert journal.stats.tail_syncs_pulled >= 1
    return messages, virtual, replayed


def test_crash_recovery_replay_beats_resubscribe():
    wall_start = time.perf_counter()
    resubscribe_messages, resub_virtual, _ = recover_and_count(journaled=False)
    journal_messages, journal_virtual, replayed = recover_and_count(journaled=True)
    wall = time.perf_counter() - wall_start

    assert journal_messages >= 1      # tail-sync is not free, just cheap
    ratio = resubscribe_messages / journal_messages
    # the acceptance bar from the issue: local replay plus tail-sync must
    # cut recovery traffic by at least 5x versus resubscribing
    assert ratio >= 5.0, (
        f"journal recovery used {journal_messages} messages vs "
        f"{resubscribe_messages} for resubscribe (ratio {ratio:.1f}x < 5x)"
    )
    assert replayed >= SURROGATES     # recovery really came from the log
    record_durability(
        "crash_recovery",
        surrogates=SURROGATES,
        resubscribe_messages=resubscribe_messages,
        journal_messages=journal_messages,
        ratio=round(ratio, 2),
        resubscribe_virtual_s=round(resub_virtual, 3),
        journal_virtual_s=round(journal_virtual, 3),
        records_replayed=replayed,
        wall_s=round(wall, 3),
    )


def test_outbox_drain_throughput():
    sim, net, linkage, login, files = make_world(journaled=True)
    pairs = populate(login, files, SURROGATES)
    sim.run_until(10.0)

    journal = linkage.durable.journal("Login")
    sent_before = net.stats.messages_sent
    delivered_before = journal.stats.outbox_delivered
    start = sim.now
    login.credentials.revoke_many([cert.crr for cert, _reader in pairs[:REVOKED]])
    deadline = start + 60.0
    while sim.now < deadline:
        if linkage.journal_quiescent() and converged(login, files):
            break
        sim.run_until(sim.now + 0.1)
    else:
        raise AssertionError("outbox did not drain within the budget")
    virtual = sim.now - start
    envelopes = net.stats.messages_sent - sent_before
    delivered = journal.stats.outbox_delivered - delivered_before
    assert delivered >= REVOKED
    assert linkage.durable.conservation_breaches() == []
    # batching: the drain must not pay one wire envelope per notification
    per_envelope = delivered / envelopes
    assert per_envelope >= 4.0, (
        f"{delivered} notifications took {envelopes} envelopes "
        f"({per_envelope:.1f}/envelope)"
    )
    record_durability(
        "outbox_drain",
        revoked=REVOKED,
        notifications_delivered=delivered,
        wire_envelopes=envelopes,
        notifications_per_envelope=round(per_envelope, 2),
        drain_virtual_s=round(virtual, 3),
    )
