"""Unit tests for clocks and drift modelling (paper section 6.8.4)."""

import pytest

from repro.runtime.clock import DriftingClock, ManualClock, SimClock, max_clock_skew
from repro.runtime.simulator import Simulator


def test_manual_clock_advances():
    clock = ManualClock(10.0)
    clock.advance(2.5)
    assert clock.now() == 12.5


def test_manual_clock_set():
    clock = ManualClock()
    clock.set(7.0)
    assert clock.now() == 7.0


def test_manual_clock_rejects_backwards():
    clock = ManualClock(5.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    with pytest.raises(ValueError):
        clock.set(4.0)


def test_sim_clock_tracks_virtual_time():
    sim = Simulator()
    clock = SimClock(sim)
    assert clock.now() == 0.0
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert clock.now() == 3.0


def test_drifting_clock_offset_only():
    sim = Simulator()
    clock = DriftingClock(sim, offset=1.5)
    assert clock.now() == 1.5


def test_drifting_clock_linear_drift():
    sim = Simulator()
    clock = DriftingClock(sim, drift=0.01)
    sim.schedule(100.0, lambda: None)
    sim.run()
    assert clock.now() == pytest.approx(101.0)


def test_drifting_clock_error_at():
    sim = Simulator()
    clock = DriftingClock(sim, offset=0.5, drift=0.001)
    assert clock.error_at(1000.0) == pytest.approx(1.5)


def test_max_clock_skew_bounds_pairwise_error():
    sim = Simulator()
    fast = DriftingClock(sim, drift=0.001)
    slow = DriftingClock(sim, drift=-0.001)
    skew = max_clock_skew([fast, slow], horizon=1000.0)
    assert skew == pytest.approx(2.0)


def test_max_clock_skew_empty():
    assert max_clock_skew([], horizon=10.0) == 0.0


def test_drifting_clocks_disagree_on_event_order():
    """Two events 1ms apart can be mis-ordered by drifted stamps; this is
    exactly the hazard section 6.8.4 describes."""
    sim = Simulator()
    clock_a = DriftingClock(sim, offset=0.01)   # 10ms fast
    clock_b = DriftingClock(sim, offset=0.0)
    stamps = {}
    sim.schedule(1.000, lambda: stamps.__setitem__("first", clock_b.now()))
    sim.schedule(1.001, lambda: stamps.__setitem__("second", clock_a.now()))
    sim.run()
    # true order: first < second, but stamped order reverses
    assert stamps["second"] > stamps["first"]  # offset pushes it later here
    # and with the offset on the *earlier* event instead:
    sim2 = Simulator()
    stamps2 = {}
    ca = DriftingClock(sim2, offset=0.01)
    cb = DriftingClock(sim2, offset=0.0)
    sim2.schedule(1.000, lambda: stamps2.__setitem__("first", ca.now()))
    sim2.schedule(1.001, lambda: stamps2.__setitem__("second", cb.now()))
    sim2.run()
    assert stamps2["first"] > stamps2["second"]
