"""Unit tests for the seeded chaos harness (FaultPlan, ChaosController,
InvariantChecker)."""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.credentials import RecordState
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.runtime.clock import SimClock
from repro.runtime.faults import (
    ChaosController,
    CrashRestart,
    DuplicationWindow,
    FaultPlan,
    InvariantChecker,
    LinkFlap,
    LossBurst,
    PartitionWindow,
    ReorderWindow,
)
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""


def make_net(**kwargs):
    sim = Simulator()
    return sim, Network(sim, seed=3, **kwargs)


def collector(net, name):
    got = []
    net.add_node(name, lambda m: got.append((net.simulator.now, m.payload)))
    return got


# ------------------------------------------------------------------ FaultPlan


def test_random_plan_is_deterministic():
    kwargs = dict(
        duration=100.0, addresses=("a", "b", "c"), services=("Login", "Files")
    )
    one = FaultPlan.random(seed=42, **kwargs)
    two = FaultPlan.random(seed=42, **kwargs)
    other = FaultPlan.random(seed=43, **kwargs)
    assert one == two
    assert one != other
    assert one.events == tuple(sorted(one.events, key=lambda e: e.at))


def test_random_plan_respects_requested_counts():
    plan = FaultPlan.random(
        seed=1,
        duration=50.0,
        addresses=("a", "b"),
        services=("S",),
        link_flaps=4,
        partitions=3,
        loss_bursts=2,
        duplication_windows=1,
        reorder_windows=1,
        crashes=2,
    )
    kinds = [type(e).__name__ for e in plan.events]
    assert kinds.count("LinkFlap") == 4
    assert kinds.count("PartitionWindow") == 3
    assert kinds.count("LossBurst") == 2
    assert kinds.count("DuplicationWindow") == 1
    assert kinds.count("ReorderWindow") == 1
    assert kinds.count("CrashRestart") == 2


def test_horizon_covers_every_fault():
    plan = FaultPlan(
        events=(
            LinkFlap(1.0, "a", "b", 5.0),
            CrashRestart(4.0, "S", 10.0),
        )
    )
    assert plan.horizon() == pytest.approx(14.0)


# ------------------------------------------------------------ ChaosController


def test_link_flap_cuts_then_heals():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    got = collector(net, "b")
    plan = FaultPlan(events=(LinkFlap(1.0, "a", "b", 2.0),))
    chaos = ChaosController(net, plan)
    chaos.arm()
    sim.schedule_at(1.5, net.send, "a", "b", "ping", "during")
    sim.schedule_at(4.0, net.send, "a", "b", "ping", "after")
    sim.run()
    assert [p for _, p in got] == ["after"]
    assert chaos.stats.link_flaps == 1
    assert net.stats.dropped_while_down == 1


def test_partition_window_heals_itself():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    got = collector(net, "b")
    plan = FaultPlan(
        events=(PartitionWindow(1.0, frozenset({"a"}), frozenset({"b"}), 2.0),)
    )
    chaos = ChaosController(net, plan)
    chaos.arm()
    sim.schedule_at(2.0, net.send, "a", "b", "ping", "during")
    sim.schedule_at(4.0, net.send, "a", "b", "ping", "after")
    sim.run()
    assert [p for _, p in got] == ["after"]
    assert chaos.stats.partitions == 1
    assert chaos.stats.heals == 1


def test_loss_burst_drops_matching_traffic_only():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("c", lambda m: None)
    got_b = collector(net, "b")
    plan = FaultPlan(
        events=(LossBurst(at=0.0, duration=10.0, probability=1.0, source="a", dest="b"),)
    )
    chaos = ChaosController(net, plan)
    chaos.arm()
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, net.send, "a", "b", "ping", t)
        sim.schedule_at(t, net.send, "c", "b", "ping", t)
    sim.run()
    # a->b eaten by the burst, c->b untouched
    assert len(got_b) == 3
    assert chaos.stats.messages_dropped == 3
    assert net.stats.dropped_by_fault == 3


def test_duplication_window_clones_messages():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    got = collector(net, "b")
    plan = FaultPlan(events=(DuplicationWindow(0.0, 10.0, probability=1.0, copies=2),))
    chaos = ChaosController(net, plan)
    chaos.arm()
    for t in (1.0, 2.0):
        sim.schedule_at(t, net.send, "a", "b", "ping", t)
    sim.run()
    assert len(got) == 4  # every message delivered twice
    assert chaos.stats.messages_duplicated == 2
    assert net.stats.duplicated == 2


def test_reorder_window_delays_messages():
    sim, net = make_net(default_delay=0.01)
    net.add_node("a", lambda m: None)
    got = collector(net, "b")
    plan = FaultPlan(
        events=(ReorderWindow(0.0, 10.0, probability=1.0, max_extra_delay=5.0),)
    )
    chaos = ChaosController(net, plan)
    chaos.arm()
    for i in range(10):
        sim.schedule_at(1.0 + i * 0.001, net.send, "a", "b", "ping", i)
    sim.run()
    assert chaos.stats.messages_reordered == 10
    payloads = [p for _, p in got]
    assert len(payloads) == 10
    assert payloads != sorted(payloads)  # later traffic overtook earlier


def test_crash_restart_fires_callbacks_and_tracks_down_set():
    sim, net = make_net()
    events = []
    plan = FaultPlan(events=(CrashRestart(2.0, "Login", downtime=3.0),))
    chaos = ChaosController(
        net,
        plan,
        crash=lambda name: events.append(("crash", name, sim.now)),
        restart=lambda name: events.append(("restart", name, sim.now)),
    )
    chaos.arm()
    sim.schedule_at(3.0, lambda: events.append(("down?", chaos.is_down("Login"), sim.now)))
    sim.run()
    assert events == [
        ("crash", "Login", 2.0),
        ("down?", True, 3.0),
        ("restart", "Login", 5.0),
    ]
    assert not chaos.is_down("Login")
    assert chaos.stats.crashes == 1
    assert chaos.stats.restarts == 1


def test_disarm_removes_injector():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    got = collector(net, "b")
    plan = FaultPlan(events=(LossBurst(0.0, 100.0, probability=1.0),))
    chaos = ChaosController(net, plan)
    chaos.arm()
    sim.run_until(1.0)
    chaos.disarm()
    net.send("a", "b", "ping", "x")
    sim.run()
    assert [p for _, p in got] == ["x"]


# ---------------------------------------------------------- InvariantChecker


def make_world(delay=0.01):
    sim = Simulator()
    net = Network(sim, seed=5, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    user = HostOS("ely").create_domain()
    return sim, net, linkage, login, files, user


def test_checker_flags_stale_true_surrogate():
    """No heartbeat monitor and a partition: the surrogate stays TRUE
    while issuer truth is FALSE — exactly the breach the checker exists
    to catch once the stale bound is exceeded."""
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sim.run()
    checker = InvariantChecker([login, files], stale_bound=1.0)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    login.exit_role(cert)
    sim.run_until(sim.now + 0.5)
    assert checker.check_fail_closed() == []  # still inside the allowance
    sim.run_until(sim.now + 2.0)
    violations = checker.check_fail_closed()
    assert len(violations) == 1
    v = violations[0]
    assert v.consumer == "Files"
    assert v.issuer == "Login"
    assert v.surrogate_state is RecordState.TRUE
    assert v.issuer_state is RecordState.FALSE
    assert v.stale_for > 1.0
    assert "Files" in str(v) and "Login" in str(v)


def test_checker_accepts_prompt_propagation():
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sim.run()
    checker = InvariantChecker([login, files], stale_bound=1.0)
    login.exit_role(cert)
    sim.run()  # Modified event lands well inside the bound
    assert checker.check_fail_closed() == []
    assert checker.converged()


def test_checker_skips_down_consumers():
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sim.run()
    down = set()
    checker = InvariantChecker(
        [login, files], stale_bound=1.0, is_down=lambda name: name in down
    )
    net.partition({"oasis:Login"}, {"oasis:Files"})
    login.exit_role(cert)
    sim.run_until(sim.now + 5.0)
    down.add("Files")  # a dead process grants nothing
    assert checker.check_fail_closed() == []
    down.clear()
    assert len(checker.check_fail_closed()) == 1


def test_divergences_and_convergence():
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sim.run()
    checker = InvariantChecker([login, files], stale_bound=1.0)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    login.exit_role(cert)
    sim.run_until(sim.now + 5.0)
    assert not checker.converged()
    assert checker.divergences() == [
        ("Files", "Login", cert.crr, RecordState.TRUE, RecordState.FALSE)
    ]
    net.heal({"oasis:Login"}, {"oasis:Files"})
    linkage.resync(files, "Login")
    sim.run()
    assert checker.converged()


# ------------------------------------------------------------ OverloadBurst


def test_overload_burst_generates_synthetic_traffic():
    from repro.runtime.faults import OverloadBurst

    sim, net = make_net()
    collector(net, "a")
    got = collector(net, "b")
    plan = FaultPlan(
        events=(OverloadBurst(at=1.0, duration=0.5, source="a", dest="b", rate=100.0),),
        seed=9,
    )
    chaos = ChaosController(net, plan)
    chaos.arm()
    sim.run_until(5.0)
    assert chaos.stats.overload_bursts == 1
    # ~rate * duration messages, all of the chaos kind, all accounted
    assert 40 <= chaos.stats.overload_messages <= 60
    assert len(got) == chaos.stats.overload_messages
    assert net.unaccounted() == 0


def test_overload_burst_stops_at_window_end():
    from repro.runtime.faults import OverloadBurst

    sim, net = make_net()
    collector(net, "a")
    got = collector(net, "b")
    plan = FaultPlan(
        events=(OverloadBurst(at=0.0, duration=1.0, source="a", dest="b", rate=50.0),),
        seed=9,
    )
    ChaosController(net, plan).arm()
    sim.run_until(30.0)
    assert got
    assert all(at <= 1.01 for at, _payload in got)


def test_overload_burst_custom_generator():
    from repro.runtime.faults import OverloadBurst

    sim, net = make_net()
    bursts = []
    plan = FaultPlan(
        events=(OverloadBurst(at=0.0, duration=0.1, source="a", dest="b", rate=30.0),),
        seed=9,
    )
    chaos = ChaosController(net, plan, overload=bursts.append)
    chaos.arm()
    sim.run_until(1.0)
    assert len(bursts) == chaos.stats.overload_messages
    assert all(event.dest == "b" for event in bursts)


def test_random_plan_includes_overload_bursts():
    from repro.runtime.faults import OverloadBurst

    plan = FaultPlan.random(
        seed=5, duration=60.0, addresses=("a", "b", "c"), overload_bursts=3
    )
    bursts = [e for e in plan.events if isinstance(e, OverloadBurst)]
    assert len(bursts) == 3
    assert plan.horizon() >= max(e.at + e.duration for e in bursts)
    replay = FaultPlan.random(
        seed=5, duration=60.0, addresses=("a", "b", "c"), overload_bursts=3
    )
    assert replay.events == plan.events


def test_checker_queue_bound_invariant():
    from repro.runtime.wire import BatchedChannel, WirePolicy

    sim, net, _linkage, login, files, _user = make_world()
    collector(net, "a")
    collector(net, "b")
    channel = BatchedChannel(
        net, "a", "b", policy=WirePolicy(max_delay=1.0, max_queue=3)
    )
    checker = InvariantChecker([login, files], stale_bound=10.0, channels=[channel])
    net.set_link_state("a", "b", False)
    for i in range(10):
        channel.send("note", i)
    assert checker.check_queue_bounds() == []     # bound held: spill kept it
    channel._pending.append({"kind": "x", "payload": 0})   # force a breach
    breaches = checker.check_queue_bounds()
    assert breaches and "holds 4 > bound 3" in breaches[0]
