"""Cross-kernel determinism: the timer-wheel kernel must execute any
interleaving of schedule/schedule_at/cancel exactly like the reference
heap-only kernel.

The wheel quantises times into slots, cascades staged levels, clamps
inserts behind its cursor, and compacts dead entries — none of which may
be observable: execution order is defined by exact ``(time, seq)`` keys
and both kernels must agree event-for-event.  A Hypothesis interpreter
drives both kernels through the same operation sequence (including
callbacks that schedule and cancel from inside events) and asserts the
dispatch logs are identical, alongside handle/counter consistency across
compaction and wheel cascades.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.heap_kernel import HeapSimulator
from repro.runtime.simulator import Simulator

# Delays chosen to straddle every wheel boundary: zero, sub-tick, exact
# slot/page edges (0.25 s = level-0 span, 64 s = level-1 span), the
# level-2 page, and the overflow heap.
DELAYS = [0.0, 1e-9, 0.0005, 0.001, 0.2499, 0.25, 0.2501, 1.0, 2.75,
          63.9, 64.0, 64.1, 300.0, 16000.0, 17000.0, 7e5]

op_strategy = st.one_of(
    st.tuples(st.just("schedule"), st.sampled_from(range(len(DELAYS))),
              st.booleans()),
    st.tuples(st.just("schedule_at"), st.floats(0.0, 1000.0,
              allow_nan=False, allow_infinity=False), st.just(False)),
    st.tuples(st.just("cancel"), st.integers(0, 10_000), st.just(False)),
    st.tuples(st.just("run_for"), st.sampled_from([0.01, 0.3, 5.0, 100.0, 20000.0]),
              st.just(False)),
    st.tuples(st.just("step"), st.just(0), st.just(False)),
)


def interpret(sim, ops):
    """Run one op sequence; return the dispatch log and final counters."""
    log = []
    handles = []
    counter = [0]

    def spawning_cb(tag, delay_idx):
        # schedule-from-inside-an-event: exercises inserts relative to a
        # moving cursor and mid-run cascades
        log.append((sim.now, tag))
        handles.append(
            sim.schedule(DELAYS[(delay_idx + 3) % len(DELAYS)], plain_cb, tag + 100000)
        )

    def plain_cb(tag):
        log.append((sim.now, tag))

    for kind, arg, flag in ops:
        counter[0] += 1
        tag = counter[0]
        if kind == "schedule":
            cb = (spawning_cb, (tag, arg)) if flag else (plain_cb, (tag,))
            handles.append(sim.schedule(DELAYS[arg], cb[0], *cb[1]))
        elif kind == "schedule_at":
            handles.append(sim.schedule_at(sim.now + arg, plain_cb, tag))
        elif kind == "cancel":
            if handles:
                sim.cancel(handles[arg % len(handles)])
        elif kind == "run_for":
            sim.run_for(arg)
        elif kind == "step":
            sim.step()
    sim.run()
    return log, sim.events_processed, sim.pending(), sim.cancelled_pending(), sim.now


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=60))
def test_wheel_and_heap_kernels_execute_identically(ops):
    wheel = interpret(Simulator(), ops)
    heap = interpret(HeapSimulator(), ops)
    assert wheel[0] == heap[0]          # same events in the same order
    assert wheel[1] == heap[1]          # same events_processed
    assert wheel[2] == heap[2] == 0     # both fully drained
    assert wheel[4] == heap[4]          # same final virtual time


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from(range(len(DELAYS))),
                       st.booleans()), min_size=50, max_size=400),
    st.randoms(use_true_random=False),
)
def test_counters_consistent_across_compaction_and_cascades(plan, rng):
    """pending()/cancelled_pending() stay exact through mass cancellation
    (compaction) and cursor advancement (cascades), on both kernels."""
    for sim in (Simulator(), HeapSimulator()):
        live = []
        expected_live = 0
        for delay_idx, cancel_it in plan:
            handle = sim.schedule(DELAYS[delay_idx], lambda: None)
            if cancel_it:
                assert sim.cancel(handle) is True
                assert sim.cancel(handle) is False  # idempotent
            else:
                live.append(handle)
                expected_live += 1
        assert sim.pending() == expected_live
        # cancel a random half of the survivors, possibly forcing compaction
        rng.shuffle(live)
        for handle in live[: len(live) // 2]:
            assert sim.cancel(handle) is True
            expected_live -= 1
        assert sim.pending() == expected_live
        assert 0 <= sim.cancelled_pending() <= max(
            256, sim.pending() + sim.cancelled_pending()
        )
        ran = sim.run()
        assert ran == expected_live == sim.events_processed
        assert sim.pending() == 0
        assert sim.cancelled_pending() == 0
