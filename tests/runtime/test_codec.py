"""The compact binary wire codec: round-trips, interning, epoch safety.

Three layers under test:

* value/frame round-trips — everything the wire carries must decode to
  an equal object, because the network now delivers *decoded frames*,
  not the sender's live payload;
* per-link symbol interning — definitions once per link on reliable
  (retained-for-retransmission) links, re-defined every frame on
  fire-and-forget links, renegotiated from scratch on a boot-epoch bump;
* encoded-form coalescing — last-state-wins on delta-encoded cascade
  items must agree with the wire layer's keyed coalescing (the
  Hypothesis property ``decode(coalesce(encode(xs))) == coalesce(xs)``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.events.model import Event
from repro.runtime.codec import (
    Encoded,
    StaleEpochError,
    UnknownSymbolError,
    WireCodec,
    _read_uvarint,
    _unzigzag,
    _write_uvarint,
    _zigzag,
    coalesce_encoded,
)
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator


def roundtrip(payload, kind="x", codec=None):
    codec = codec or WireCodec()
    encoded = codec.encode("a", "b", kind, payload)
    return codec.decode("a", "b", encoded.data), encoded


# -- primitives ---------------------------------------------------------------


class TestPrimitives:
    @given(st.integers(min_value=0, max_value=2**70))
    def test_uvarint_roundtrip(self, n):
        out = bytearray()
        _write_uvarint(out, n)
        value, pos = _read_uvarint(bytes(out), 0)
        assert value == n and pos == len(out)

    @given(st.integers())
    def test_zigzag_roundtrip(self, n):
        assert _unzigzag(_zigzag(n)) == n

    def test_zigzag_small_values_stay_small(self):
        # the delta encoding relies on small deltas costing one byte
        for n in (-64, -1, 0, 1, 63):
            assert _zigzag(n) < 128

    def test_uvarint_rejects_negative(self):
        with pytest.raises(CodecError):
            _write_uvarint(bytearray(), -1)


# -- value round-trips --------------------------------------------------------


SCALARS = [
    None,
    True,
    False,
    0,
    -1,
    1,
    127,
    -(2**40),
    2**40,
    0.0,
    -2.5,
    float("inf"),
    "",
    "hello",
    "λ-calculus",
    b"",
    b"\x00\xff raw",
]


class TestValueRoundTrip:
    @pytest.mark.parametrize("payload", SCALARS)
    def test_scalars(self, payload):
        decoded, _ = roundtrip(payload)
        assert decoded == payload
        assert type(decoded) is type(payload)

    def test_containers(self):
        payload = {
            "list": [1, "two", None],
            "tuple": (1, 2),
            "nested": {"k": [{"deep": (3.5, False)}]},
            7: "int-key",
        }
        decoded, _ = roundtrip(payload)
        assert decoded == payload
        assert isinstance(decoded["tuple"], tuple)
        assert isinstance(decoded["list"], list)

    def test_long_string_not_interned(self):
        codec = WireCodec(intern_max_len=8)
        decoded, encoded = roundtrip("x" * 100, codec=codec)
        assert decoded == "x" * 100
        assert encoded.intern_misses == 1  # charged, but sent as plain text

    def test_event_extension(self):
        event = Event("withdrawal", ("alice", 50), timestamp=3.25, source="Bank")
        decoded, _ = roundtrip({"event": event, "horizon": 3.25})
        assert decoded["event"] == event
        assert isinstance(decoded["event"], Event)

    def test_unencodable_payload_is_loud(self):
        with pytest.raises(CodecError):
            roundtrip({1, 2, 3})
        with pytest.raises(CodecError):
            roundtrip(object())

    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.floats(allow_nan=False)
            | st.text(max_size=20)
            | st.binary(max_size=20),
            lambda leaf: st.lists(leaf, max_size=4)
            | st.dictionaries(st.text(max_size=8), leaf, max_size=4),
            max_leaves=20,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_generic_values_roundtrip(self, payload):
        decoded, _ = roundtrip(payload)
        assert decoded == payload


# -- typed frames -------------------------------------------------------------


class TestTypedFrames:
    def test_heartbeat_frames(self):
        codec = WireCodec()
        for kind, body in [
            ("heartbeat", {"seq": 17, "horizon": 4.5, "epoch": 2}),
            ("heartbeat-ack", {"ack": 12}),
            ("heartbeat-nack", {"missing": [3, 4, 9]}),
            ("heartbeat-fillers", {"seqs": [5, 6, 7], "horizon": 1.0, "epoch": 1}),
            (
                "heartbeat-payload",
                {"seq": 3, "horizon": 0.5, "epoch": 1, "payload": {"items": []}},
            ),
        ]:
            decoded, encoded = roundtrip(body, kind=kind, codec=codec)
            assert decoded == body, kind
        assert codec.stats.generic_frames == 0  # every shape hit its typed frame

    def test_rpc_frames(self):
        codec = WireCodec()
        request = {"id": 4, "method": "add", "args": (2, 3), "kwargs": {"x": 1}}
        decoded, _ = roundtrip(request, kind="rpc-request", codec=codec)
        assert decoded == request
        for reply in [{"id": 4, "value": 5}, {"id": 4, "error": "boom"}, {"id": 4}]:
            decoded, _ = roundtrip(reply, kind="rpc-reply", codec=codec)
            assert decoded == reply
        event = {"topic": "alerts", "payload": [1, 2]}
        decoded, _ = roundtrip(event, kind="rpc-event", codec=codec)
        assert decoded == event
        assert codec.stats.generic_frames == 0

    def test_mismatched_shape_falls_back_to_generic(self):
        codec = WireCodec()
        body = {"seq": "not-an-int"}
        decoded, _ = roundtrip(body, kind="heartbeat", codec=codec)
        assert decoded == body
        assert codec.stats.generic_frames == 1

    def test_batch_frame_roundtrip(self):
        codec = WireCodec()
        items = [
            {"kind": "subscribe", "payload": {"ref": 9, "subscriber": "Files"}},
            mod("Login", 4, "false", (1, 7)),
            mod("Login", 5, "unknown", (1, 8)),
        ]
        body = {"items": items, "hb": {"seq": 2, "horizon": 1.5, "epoch": 1}}
        decoded, _ = roundtrip(body, kind="wire-batch", codec=codec)
        assert decoded["hb"] == body["hb"]
        # generic items keep their position; modified items group after
        assert decoded["items"][0] == items[0]
        assert sorted_mods(decoded["items"][1:]) == sorted_mods(items[1:])

    def test_delta_encoding_is_compact(self):
        codec = WireCodec()
        codec.set_reliable("a", "b")
        items = [mod("Login", 1000 + i, "false", (1, i + 1)) for i in range(100)]
        first = codec.encode_items("a", "b", items)
        again = codec.encode_items("a", "b", items)
        # warm table: ~5 bytes per record (ref delta, flags, stamp delta)
        assert len(again.frame.data) < 100 * 8
        assert len(again.frame.data) < len(repr({"items": items})) / 10


def mod(issuer, ref, state, stamp=None):
    return {
        "kind": "modified",
        "payload": {"issuer": issuer, "ref": ref, "state": state, "stamp": stamp},
    }


def sorted_mods(items):
    return sorted(items, key=lambda i: (i["payload"]["issuer"], i["payload"]["ref"]))


# -- interning lifecycle ------------------------------------------------------


class TestInterning:
    def test_reliable_link_refs_after_first_frame(self):
        codec = WireCodec()
        codec.set_reliable("a", "b")
        first = codec.encode("a", "b", "x", ["Login", "Login", "Login"])
        second = codec.encode("a", "b", "x", ["Login"])
        assert first.intern_misses == 1 and first.intern_hits == 2
        assert second.intern_misses == 0 and second.intern_hits == 1
        assert len(second.data) < len(first.data)
        assert codec.decode("a", "b", first.data) == ["Login"] * 3
        assert codec.decode("a", "b", second.data) == ["Login"]

    def test_unreliable_link_redefines_every_frame(self):
        # no retransmission guarantee -> every frame self-contained
        codec = WireCodec()
        codec.encode("a", "b", "x", "Login")
        second = codec.encode("a", "b", "x", "Login")
        assert second.intern_misses == 1 and second.intern_hits == 0
        # out-of-order decode works because nothing spans frames
        assert codec.decode("a", "b", second.data) == "Login"

    def test_tables_are_per_directed_link(self):
        codec = WireCodec()
        codec.set_reliable("a", "b")
        codec.encode("a", "b", "x", "Login")
        reverse = codec.encode("b", "a", "x", "Login")
        assert reverse.intern_misses == 1  # the reverse link starts cold

    def test_dangling_ref_is_rejected_not_guessed(self):
        codec = WireCodec()
        codec.set_reliable("a", "b")
        codec.encode("a", "b", "x", "Login")          # defines symbol 0
        second = codec.encode("a", "b", "x", "Login")  # bare ref
        with pytest.raises(UnknownSymbolError):
            codec.decode("a", "b", second.data)        # def frame never arrived
        assert codec.stats.unknown_symbol_rejected == 1

    def test_table_bound_falls_back_to_plain_strings(self):
        codec = WireCodec(max_symbols=4)
        codec.set_reliable("a", "b")
        names = [f"principal-{i}" for i in range(10)]
        encoded = codec.encode("a", "b", "x", names)
        assert codec.decode("a", "b", encoded.data) == names


# -- epoch renegotiation (satellite: intern-table epoch safety) ---------------


class TestEpochSafety:
    def make(self):
        codec = WireCodec()
        epoch = {"value": 1}
        codec.set_epoch_source("a", lambda: epoch["value"])
        codec.set_reliable("a", "b")
        return codec, epoch

    def test_epoch_bump_renegotiates_symbols(self):
        codec, epoch = self.make()
        codec.decode("a", "b", codec.encode("a", "b", "x", "Login").data)
        warm = codec.encode("a", "b", "x", "Login")
        assert warm.intern_hits == 1
        epoch["value"] = 2  # crash-restart
        fresh = codec.encode("a", "b", "x", "Login")
        assert fresh.intern_misses == 1 and fresh.intern_hits == 0
        assert codec.decode("a", "b", fresh.data) == "Login"

    def test_stale_epoch_frame_rejected_after_new_epoch_seen(self):
        codec, epoch = self.make()
        stale = codec.encode("a", "b", "x", "Login")
        epoch["value"] = 2
        codec.decode("a", "b", codec.encode("a", "b", "x", "Login").data)
        # the pre-crash frame's symbol ids belong to a dead table
        with pytest.raises(StaleEpochError):
            codec.decode("a", "b", stale.data)
        assert codec.stats.stale_epoch_rejected == 1

    def test_late_old_epoch_frame_before_any_new_traffic_still_decodes(self):
        # the receiver cannot know about a restart it has not seen; the
        # monitor-level (epoch, seq) stamps handle application staleness
        codec, epoch = self.make()
        stale = codec.encode("a", "b", "x", "Login")
        epoch["value"] = 2
        assert codec.decode("a", "b", stale.data) == "Login"

    def test_stale_ids_never_resolve_against_new_table(self):
        codec, epoch = self.make()
        # establish "Login" as id 0 in epoch 1
        codec.decode("a", "b", codec.encode("a", "b", "x", "Login").data)
        stale_ref = codec.encode("a", "b", "x", "Login")  # bare ref to id 0
        epoch["value"] = 2
        # in epoch 2, id 0 is a *different* symbol
        codec.decode("a", "b", codec.encode("a", "b", "x", "Files").data)
        with pytest.raises(StaleEpochError):
            codec.decode("a", "b", stale_ref.data)


# -- encoded-form coalescing (satellite: round-trip property) -----------------


def reference_coalesce(items):
    """The wire layer's last-state-wins semantics on plain items: the
    final state of each (issuer, ref) at its first occurrence's position,
    generic items untouched, modified items grouped per issuer (the
    decoded order of an items frame)."""
    others = [i for i in items if i["kind"] != "modified"]
    groups: dict[str, dict[int, dict]] = {}
    for item in items:
        if item["kind"] != "modified":
            continue
        body = item["payload"]
        run = groups.setdefault(body["issuer"], {})
        run[body["ref"]] = body  # dict overwrite keeps the first position
    return others + [
        {"kind": "modified", "payload": dict(body)}
        for run in groups.values()
        for body in run.values()
    ]


_states = st.sampled_from(["true", "false", "unknown"])
_stamps = st.none() | st.tuples(
    st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=1000)
)
_mod_items = st.builds(
    mod,
    st.sampled_from(["Login", "Files", "Badges"]),
    st.integers(min_value=-50, max_value=50),
    _states,
    _stamps,
)
_other_items = st.builds(
    lambda ref: {"kind": "subscribe", "payload": {"ref": ref, "subscriber": "S"}},
    st.integers(min_value=0, max_value=20),
)
_item_lists = st.lists(_mod_items | _other_items, max_size=40)


class TestEncodedCoalescing:
    @given(_item_lists)
    @settings(max_examples=200, deadline=None)
    def test_decode_coalesce_encode_equals_coalesce(self, items):
        codec = WireCodec()
        section = codec.encode_items("a", "b", items, coalesce=False)
        coalesced = coalesce_encoded(section.frame.data)
        decoded = codec.decode("a", "b", coalesced)
        assert decoded["items"] == reference_coalesce(items)

    @given(_item_lists)
    @settings(max_examples=100, deadline=None)
    def test_encode_side_coalescing_agrees(self, items):
        codec = WireCodec()
        eager = codec.encode_items("a", "b", items, coalesce=True)
        assert codec.decode("a", "b", eager.frame.data)["items"] == (
            reference_coalesce(items)
        )

    @given(_item_lists)
    @settings(max_examples=100, deadline=None)
    def test_coalesce_encoded_is_idempotent(self, items):
        codec = WireCodec()
        section = codec.encode_items("a", "b", items, coalesce=False)
        once = coalesce_encoded(section.frame.data)
        assert coalesce_encoded(once) == once

    def test_coalesce_never_grows_the_frame(self):
        codec = WireCodec()
        items = [mod("Login", i % 5, "false", (1, i)) for i in range(50)]
        section = codec.encode_items("a", "b", items, coalesce=False)
        assert len(coalesce_encoded(section.frame.data)) < len(section.frame.data)


# -- network integration ------------------------------------------------------


class TestNetworkIntegration:
    def make(self):
        sim = Simulator()
        net = Network(sim, seed=3)
        got = []
        net.add_node("a", lambda m: got.append(m))
        net.add_node("b", lambda m: got.append(m))
        return sim, net, got

    def test_delivery_is_a_real_roundtrip(self):
        sim, net, got = self.make()
        payload = {"issuer": "Login", "refs": [1, 2, 3], "flag": True}
        net.send("a", "b", "data", payload)
        sim.run()
        assert got[0].payload == payload
        assert got[0].payload is not payload  # decoded copy, not the object

    def test_bytes_accounting_uses_encoded_size(self):
        sim, net, got = self.make()
        net.send("a", "b", "data", ["credential-record"] * 20)
        stats = net.stats
        assert 0 < stats.encoded_bytes < stats.repr_bytes
        assert stats.bytes_sent == stats.encoded_bytes + 24  # header
        assert 0 < stats.bytes_ratio() < 1

    def test_unencodable_send_raises_before_transmission(self):
        sim, net, got = self.make()
        with pytest.raises(CodecError):
            net.send("a", "b", "data", {1, 2, 3})
        assert net.stats.messages_sent == 0  # nothing counted, nothing sent

    def test_pre_encoded_payload_passes_through(self):
        sim, net, got = self.make()
        encoded = net.codec.encode("a", "b", "data", [1, 2])
        net.send("a", "b", "data", encoded)
        sim.run()
        assert got[0].payload == [1, 2]
        assert net.stats.encoded_bytes == len(encoded.data)

    def test_undecodable_frame_dropped_with_accounting(self):
        sim, net, got = self.make()
        net.send("a", "b", "data", Encoded(b"\x01\x01\x00\xff", repr_len=4))
        sim.run()
        assert got == []
        assert net.stats.dropped_decode == 1
        assert net.unaccounted() == 0  # the drop has a recorded fate

    def test_crashed_node_learns_no_symbols(self):
        sim, net, got = self.make()
        net.node("b").up = False
        net.send("a", "b", "data", "Login")  # SYMDEF in flight
        sim.run()
        assert net.stats.dropped_while_down == 1
        # the def died with the frame: a bare ref must not resolve
        net.node("b").up = True
        assert net.codec._decoder_for("a", "b").symbols == {}
