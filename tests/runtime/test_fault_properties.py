"""Property-based chaos tests (ISSUE 5 satellite).

Hypothesis drives random fault plans and operation interleavings over a
small seeded world and asserts the fail-closed invariant always holds;
after faults cease the system must quiesce to brute-force ground truth
(every surrogate equal to its issuer's actual record state, every
validation outcome matching the issuer's answer).
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import OasisError, RevokedError
from repro.runtime.clock import SimClock
from repro.runtime.faults import ChaosController, FaultPlan, InvariantChecker
from repro.runtime.network import Network
from repro.runtime.rpc import RetryPolicy, RpcEndpoint
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

DURATION = 30.0
MAX_OUTAGE = 4.0
PERIOD = 0.5
GRACE = 2.0
STALE_BOUND = MAX_OUTAGE + (GRACE + 1.0) * PERIOD + 3.0
SETTLE = 25.0


def build_world(seed):
    sim = Simulator()
    net = Network(sim, seed=seed, default_delay=0.01)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    linkage.monitor(login, files, period=PERIOD, grace=GRACE)
    return sim, net, linkage, login, files


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    ops=st.lists(st.integers(min_value=0, max_value=3), min_size=10, max_size=60),
)
def test_fail_closed_holds_and_quiesces_to_ground_truth(seed, ops):
    sim, net, linkage, login, files = build_world(seed)
    host = HostOS("prop-host")
    services = {"Login": login, "Files": files}
    plan = FaultPlan.random(
        seed=seed,
        duration=DURATION,
        addresses=("oasis:Login", "oasis:Files"),
        services=("Login", "Files"),
        link_flaps=2,
        partitions=1,
        loss_bursts=2,
        duplication_windows=2,
        reorder_windows=2,
        crashes=1,
        max_outage=MAX_OUTAGE,
    )
    chaos = ChaosController(
        net,
        plan,
        crash=lambda name: linkage.crash(services[name]),
        restart=lambda name: linkage.restart(services[name]),
    )
    checker = InvariantChecker(
        [login, files], stale_bound=STALE_BOUND, is_down=chaos.is_down
    )
    chaos.arm()

    rng = random.Random(f"prop-ops:{seed}")
    sessions = []
    next_user = [0]

    def do_op(code):
        try:
            if code == 0 and not chaos.is_down("Login"):
                domain = host.create_domain()
                user = f"p{next_user[0]}"
                next_user[0] += 1
                cert = login.enter_role(
                    domain.client_id, "LoggedOn", (user, "prop-host")
                )
                sessions.append(
                    {"client": domain.client_id, "login_cert": cert, "reader": None}
                )
            elif code == 1 and sessions and not chaos.is_down("Login"):
                session = rng.choice(sessions)
                sessions.remove(session)
                login.exit_role(session["login_cert"])
            elif code == 2 and sessions and not chaos.is_down("Files"):
                session = rng.choice(sessions)
                if session["reader"] is None:
                    session["reader"] = files.enter_role(
                        session["client"],
                        "Reader",
                        credentials=(session["login_cert"],),
                    )
            elif code == 3 and not chaos.is_down("Files"):
                candidates = [s for s in sessions if s["reader"] is not None]
                if candidates:
                    files.validate(rng.choice(candidates)["reader"])
        except OasisError:
            pass  # individual denials are fine; safety is what we assert

    spacing = DURATION / max(len(ops), 1)
    for index, code in enumerate(ops):
        sim.schedule_at(0.2 + index * spacing, do_op, code)
    for tick in range(int(DURATION + SETTLE)):
        sim.schedule_at(0.6 + tick, checker.check_fail_closed)
    end = max(plan.horizon(), DURATION) + SETTLE
    sim.schedule_at(max(plan.horizon(), DURATION) + 0.5, chaos.disarm)
    sim.run_until(end)

    # invariant 1: never a stale grant beyond the propagation allowance
    assert checker.violations == [], "\n".join(str(v) for v in checker.violations)
    # invariant 2: quiesced to brute-force ground truth
    assert checker.converged(), checker.divergences()
    for session in sessions:
        if session["reader"] is None:
            continue
        truth = login.credentials.state_of(session["login_cert"].crr)
        if truth.name == "TRUE":
            files.validate(session["reader"])
        else:
            with pytest.raises(RevokedError):
                files.validate(session["reader"])


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    calls=st.integers(min_value=1, max_value=15),
    dup_p=st.floats(min_value=0.0, max_value=0.9),
    loss_p=st.floats(min_value=0.0, max_value=0.5),
)
def test_rpc_executes_at_most_once_per_logical_call(seed, calls, dup_p, loss_p):
    """Under random duplication and loss with retries, a counting handler
    never executes more than once per logical call, and every call that
    reports success executed exactly once."""
    sim = Simulator()
    net = Network(sim, seed=seed)
    server = RpcEndpoint(net, "server", seed=seed)
    policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0, jitter=0.2)
    client = RpcEndpoint(net, "client", retry=policy, seed=seed)
    count = [0]

    def bump(i):
        count[0] += 1
        return i

    server.register("bump", bump)
    rng = random.Random(f"rpc-prop:{seed}")

    def injector(message, delay):
        if rng.random() < loss_p:
            return None
        delays = [delay]
        if rng.random() < dup_p:
            delays.append(delay + rng.uniform(0.0, 0.5))
        return delays

    net.set_fault_injector(injector)
    futures = [client.call("server", "bump", i, timeout=1.0) for i in range(calls)]
    sim.run()
    succeeded = [i for i, f in enumerate(futures) if not f.failed]
    for i in succeeded:
        assert futures[i].result() == i
    # at-most-once: dedup caps executions at one per logical call, and a
    # success implies its execution happened
    assert count[0] == server.stats.executions
    assert len(succeeded) <= server.stats.executions <= calls
