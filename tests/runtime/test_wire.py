"""Unit tests for the wire-efficiency layer (batching, coalescing,
heartbeat piggybacking) and the NetworkStats counter surface."""

import pytest

from repro.runtime import wire
from repro.runtime.heartbeat import HeartbeatMonitor, HeartbeatSender
from repro.runtime.network import Link, Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import BatchedChannel, ChannelPool, WirePolicy


def make_world(**net_kwargs):
    sim = Simulator()
    net = Network(sim, seed=13, **net_kwargs)
    got = []

    def sink(message):
        for msg in wire.unpack(message):
            got.append((msg.kind, msg.payload))

    net.add_node("a", lambda m: None)
    net.add_node("b", sink)
    return sim, net, got


class TestBatching:
    def test_same_instant_sends_share_one_message(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        for i in range(10):
            channel.send("item", i)
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.payloads_carried == 10
        assert [p for _, p in got] == list(range(10))

    def test_size_flush_at_max_batch(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b", policy=WirePolicy(max_batch=4))
        for i in range(10):
            channel.send("item", i)
        channel.flush()
        sim.run()
        # 4 + 4 + 2 (explicit)
        assert net.stats.messages_sent == 3
        assert [p for _, p in got] == list(range(10))

    def test_time_flush_after_max_delay(self):
        sim, net, got = make_world()
        channel = BatchedChannel(
            net, "a", "b", policy=WirePolicy(max_batch=1000, max_delay=0.5)
        )
        channel.send("item", 1)
        sim.run_until(0.4)
        assert net.stats.messages_sent == 0  # still queued
        sim.run_until(0.4 + 0.5)
        assert net.stats.messages_sent == 1

    def test_urgent_send_flushes_immediately(self):
        sim, net, got = make_world()
        channel = BatchedChannel(
            net, "a", "b", policy=WirePolicy(max_batch=1000, max_delay=10.0)
        )
        channel.send("item", 1)
        channel.send("item", 2, urgent=True)
        assert channel.pending == 0
        sim.run_until(0.1)
        assert [p for _, p in got] == [1, 2]

    def test_flush_is_idempotent_and_empty_flush_sends_nothing(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        channel.flush()
        channel.send("item", 1)
        channel.flush()
        channel.flush()
        sim.run()
        assert net.stats.messages_sent == 1

    def test_batches_deliver_in_send_order(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b", policy=WirePolicy(max_batch=3))
        for i in range(9):
            channel.send("item", i)
        sim.run()
        assert [p for _, p in got] == list(range(9))

    def test_unpack_passes_plain_messages_through(self):
        sim, net, got = make_world()
        net.send("a", "b", "plain", {"x": 1})
        sim.run()
        assert got == [("plain", {"x": 1})]


class TestCoalescing:
    def test_last_state_wins(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        channel.send("state", "TRUE", coalesce_key="r1")
        channel.send("state", "UNKNOWN", coalesce_key="r1")
        channel.send("state", "FALSE", coalesce_key="r1")
        sim.run()
        assert got == [("state", "FALSE")]
        assert net.stats.messages_sent == 1
        assert net.stats.payloads_carried == 1
        assert net.stats.coalesced == 2
        assert channel.stats.coalesced == 2

    def test_coalescing_is_per_key(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        channel.send("state", ("r1", 1), coalesce_key="r1")
        channel.send("state", ("r2", 1), coalesce_key="r2")
        channel.send("state", ("r1", 2), coalesce_key="r1")
        sim.run()
        assert got == [("state", ("r1", 2)), ("state", ("r2", 1))]

    def test_coalescing_resets_after_flush(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        channel.send("state", 1, coalesce_key="k")
        channel.flush()
        channel.send("state", 2, coalesce_key="k")
        channel.flush()
        sim.run()
        assert [p for _, p in got] == [1, 2]
        assert net.stats.coalesced == 0

    def test_unkeyed_sends_never_coalesce(self):
        sim, net, got = make_world()
        channel = BatchedChannel(net, "a", "b")
        channel.send("event", "x")
        channel.send("event", "x")
        sim.run()
        assert len(got) == 2


class TestNetworkStats:
    def test_loss_probability_drops_are_counted(self):
        sim, net, got = make_world()
        net.set_link("a", "b", Link(loss_probability=1.0))
        net.send("a", "b", "ping", None)
        assert net.stats.dropped_by_loss == 1
        assert net.link_stats("a", "b").dropped_by_loss == 1
        assert net.messages_lost == 1  # legacy alias covers loss drops

    def test_partition_drops_count_as_down(self):
        sim, net, got = make_world()
        net.partition({"a"}, {"b"})
        net.send("a", "b", "ping", None)
        assert net.stats.dropped_while_down == 1
        assert net.link_stats("a", "b").dropped_while_down == 1
        assert net.stats.dropped_by_loss == 0

    def test_per_link_stats_are_directional(self):
        sim, net, got = make_world()
        net.send("a", "b", "ping", None)
        assert net.link_stats("a", "b").messages_sent == 1
        assert net.link_stats("b", "a").messages_sent == 0

    def test_bytes_in_spirit_accumulate_and_batching_saves_headers(self):
        def run(max_batch):
            sim = Simulator()
            net = Network(sim, seed=1)
            net.add_node("a", lambda m: None)
            net.add_node("b", lambda m: None)
            channel = BatchedChannel(
                net, "a", "b", policy=WirePolicy(max_batch=max_batch)
            )
            for i in range(50):
                channel.send("item", {"n": i})
            channel.flush()
            sim.run()
            return net.stats.bytes_sent

        assert 0 < run(max_batch=64) < run(max_batch=1)

    def test_down_node_counts_toward_network_stats(self):
        sim, net, got = make_world()
        net.node("b").up = False
        net.send("a", "b", "ping", None)
        sim.run()
        assert net.stats.dropped_while_down == 1
        assert net.link_stats("a", "b").dropped_while_down == 1


class TestChannelPool:
    def test_per_destination_channels(self):
        sim = Simulator()
        net = Network(sim, seed=2)
        net.add_node("a", lambda m: None)
        net.add_node("b", lambda m: None)
        net.add_node("c", lambda m: None)
        pool = ChannelPool(net, "a")
        assert pool.to("b") is pool.to("b")
        assert pool.to("b") is not pool.to("c")
        pool.to("b").send("x", 1)
        pool.to("c").send("x", 2)
        pool.flush_all()
        sim.run()
        assert net.link_stats("a", "b").messages_sent == 1
        assert net.link_stats("a", "c").messages_sent == 1


class TestHeartbeatPiggyback:
    def make_pair(self, period=1.0, **monitor_kwargs):
        sim = Simulator()
        net = Network(sim, seed=21)
        sender = HeartbeatSender(net, "svc", "cli", period)
        monitor = HeartbeatMonitor(net, "cli", "svc", period, **monitor_kwargs)

        def svc_node(message):
            if message.kind == "heartbeat-ack":
                sender.handle_ack(message.payload["ack"])
            elif message.kind == "heartbeat-nack":
                sender.handle_nack(message.payload["missing"])

        def cli_node(message):
            hb = wire.heartbeat_of(message)
            if hb is not None:
                monitor.handle_message("heartbeat", hb)
            for msg in wire.unpack(message):
                if msg.kind in ("heartbeat", "heartbeat-payload", "heartbeat-fillers"):
                    monitor.handle_message(msg.kind, msg.payload)

        net.add_node("svc", svc_node)
        net.add_node("cli", cli_node)
        channel = BatchedChannel(net, "svc", "cli", heartbeat=sender)
        return sim, net, sender, monitor, channel

    def test_busy_link_sends_no_standalone_heartbeats(self):
        sim, net, sender, monitor, channel = self.make_pair(period=1.0)
        sender.start()

        def traffic():
            channel.send("data", sim.now)
            sim.schedule(0.4, traffic)

        traffic()
        sim.run_until(1.0)
        # only the startup tick (t=0, before any data flowed) may be bare
        bare_at_warmup = sender.stats.heartbeats_sent
        assert bare_at_warmup <= 1
        sim.run_until(30.0)
        assert sender.stats.heartbeats_sent == bare_at_warmup
        assert sender.stats.piggybacked > 0
        assert not monitor.suspect

    def test_idle_link_falls_back_to_bare_heartbeats(self):
        sim, net, sender, monitor, channel = self.make_pair(period=1.0)
        sender.start()
        channel.send("data", "only-once")
        sim.run_until(10.0)
        assert sender.stats.heartbeats_sent >= 8
        assert not monitor.suspect

    def test_idle_silence_still_detected_within_bound(self):
        suspected = []
        sim, net, sender, monitor, channel = self.make_pair(
            period=1.0, grace=2.0, on_suspect=lambda: suspected.append(sim.now)
        )
        sender.start()

        def traffic():
            channel.send("data", sim.now)
            sim.schedule(0.4, traffic)

        traffic()
        sim.run_until(10.0)
        net.partition({"svc"}, {"cli"})
        sim.run_until(30.0)
        assert suspected
        # detection within grace*period + one watchdog period of the cut
        assert suspected[0] <= 10.0 + 2.0 * 1.0 + 1.0 + 1e-9

    def test_lost_batch_detected_as_heartbeat_gap(self):
        sim, net, sender, monitor, channel = self.make_pair(period=1.0)
        sender.start()
        # this batch's piggybacked seq is dropped with the batch
        sim.schedule(1.4, net.partition, {"svc"}, {"cli"})
        sim.schedule(1.5, channel.send, "data", "lost")
        sim.schedule(1.5, channel.flush)
        sim.schedule(1.6, net.heal, {"svc"}, {"cli"})
        sim.run_until(20.0)
        assert monitor.stats.gaps_detected >= 1
        assert sender.stats.resends >= 1   # filler closed the gap
        assert not monitor.suspect
        assert monitor._contiguous == monitor._max_seen

    def test_piggyback_resets_bare_timer(self):
        sim, net, sender, monitor, channel = self.make_pair(period=1.0)
        sender.start()   # t=0 tick sends a bare heartbeat immediately
        sim.run_until(0.5)
        bare_before = sender.stats.heartbeats_sent
        channel.send("data", 1)   # piggyback at t=0.5
        sim.run_until(1.2)        # t=1.0 tick sees recent traffic: no bare
        assert sender.stats.heartbeats_sent == bare_before

    def test_gap_after_piggyback_never_exceeds_one_period(self):
        """A skipped tick must re-arm for when the piggyback's quiet
        interval expires, not a full period later — otherwise one burst of
        traffic stretches the liveness gap toward 2x period and a monitor
        with grace < 2 falsely suspects a healthy link."""
        suspected = []
        sim, net, sender, monitor, channel = self.make_pair(
            period=1.0, grace=1.5, on_suspect=lambda: suspected.append(sim.now)
        )
        sender.start()
        channel.send("data", "burst")   # piggyback at t=0, then silence
        sim.run_until(10.0)
        assert suspected == []
        assert not monitor.suspect
        # bare heartbeats resumed at period cadence after the burst
        assert sender.stats.heartbeats_sent >= 8


class TestBoundedQueue:
    """WirePolicy.max_queue (ISSUE 6): held-queue mode with spill-oldest
    overflow, a backpressure signal, and flush-on-link-up release."""

    def make_bounded(self, max_queue=4, max_batch=64, **net_kwargs):
        sim, net, got = make_world(**net_kwargs)
        channel = BatchedChannel(
            net, "a", "b",
            policy=WirePolicy(max_batch=max_batch, max_delay=1.0, max_queue=max_queue),
        )
        return sim, net, got, channel

    def test_held_while_down_then_released_on_link_up(self):
        sim, net, got, channel = self.make_bounded(max_queue=8)
        net.set_link_state("a", "b", False)
        for i in range(3):
            channel.send("note", i)
        sim.run_until(5.0)
        assert got == []                         # held, not emitted into the dead link
        assert channel.stats.held_flushes >= 1
        assert net.stats.dropped_while_down == 0
        net.set_link_state("a", "b", True)       # link-up releases the backlog
        sim.run_until(10.0)
        assert [payload for _kind, payload in got] == [0, 1, 2]
        assert channel.pending == 0

    def test_overflow_spills_oldest_with_accounting(self):
        sim, net, got, channel = self.make_bounded(max_queue=4)
        net.set_link_state("a", "b", False)
        for i in range(10):
            channel.send("note", i)
        assert channel.pending == 4
        assert channel.stats.spilled == 6
        assert net.stats.spilled_overflow == 6
        assert channel.stats.max_pending <= 5    # bound enforced on every send
        net.set_link_state("a", "b", True)
        sim.run_until(5.0)
        # the freshest payloads survived the spill (last-state-wins spirit)
        assert [payload for _kind, payload in got] == [6, 7, 8, 9]

    def test_backpressure_signal(self):
        sim, net, got, channel = self.make_bounded(max_queue=3)
        net.set_link_state("a", "b", False)
        assert not channel.backpressure
        for i in range(3):
            channel.send("note", i)
        assert channel.backpressure
        net.set_link_state("a", "b", True)
        sim.run_until(5.0)
        assert not channel.backpressure

    def test_coalescing_continues_while_held(self):
        """A held queue still coalesces keyed payloads in place, so the
        backlog carries final states, not history."""
        sim, net, got, channel = self.make_bounded(max_queue=8)
        net.set_link_state("a", "b", False)
        for state in ("TRUE", "UNKNOWN", "FALSE"):
            channel.send("modified", {"ref": 7, "state": state}, coalesce_key=7)
        sim.run_until(2.0)
        assert channel.pending == 1
        net.set_link_state("a", "b", True)
        sim.run_until(5.0)
        assert got == [("modified", {"ref": 7, "state": "FALSE"})]

    def test_spilled_keyed_item_can_be_resent(self):
        """Spilling a keyed payload must unindex it: a later send under
        the same key starts a fresh queue entry rather than updating a
        ghost."""
        sim, net, got, channel = self.make_bounded(max_queue=2)
        net.set_link_state("a", "b", False)
        channel.send("modified", {"ref": 1, "state": "A"}, coalesce_key=1)
        channel.send("note", "x")
        channel.send("note", "y")                # spills the keyed item
        assert channel.stats.spilled == 1
        channel.send("modified", {"ref": 1, "state": "B"}, coalesce_key=1)
        net.set_link_state("a", "b", True)
        sim.run_until(5.0)
        payloads = [payload for _kind, payload in got]
        assert {"ref": 1, "state": "B"} in payloads
        assert {"ref": 1, "state": "A"} not in payloads

    def test_unbounded_channel_keeps_legacy_fire_and_forget(self):
        """Without max_queue the channel emits into a down link exactly
        as before (the datagram drop is the accounting record)."""
        sim, net, got, channel_holder = self.make_bounded()
        channel = BatchedChannel(net, "a", "b", policy=WirePolicy(max_delay=0.0))
        net.set_link_state("a", "b", False)
        channel.send("note", 1)
        sim.run_until(1.0)
        assert net.stats.dropped_while_down == 1
        assert channel.pending == 0

    def test_pool_backpressured_lists_channels_at_bound(self):
        sim = Simulator()
        net = Network(sim, seed=13)
        net.add_node("a", lambda m: None)
        net.add_node("b", lambda m: None)
        net.add_node("c", lambda m: None)
        pool = ChannelPool(
            net, "a", policy=WirePolicy(max_delay=1.0, max_queue=2)
        )
        net.set_link_state("a", "b", False)
        pool.to("b").send("note", 1)
        pool.to("b").send("note", 2)
        pool.to("c").send("note", 3)
        assert pool.backpressured() == [pool.to("b")]


class TestSpillInterleave:
    """ISSUE 7 satellite: spill accounting and the backpressure signal
    must stay exact under interleaved flush / link-down / link-up, and
    every payload must be accounted for exactly once —
    ``delivered + pending + spilled`` equals sends at every step."""

    def make_bounded(self, max_queue=4):
        sim, net, got = make_world()
        channel = BatchedChannel(
            net, "a", "b",
            policy=WirePolicy(max_batch=64, max_delay=1.0, max_queue=max_queue),
        )
        return sim, net, got, channel

    def test_conservation_across_interleaved_flush_and_link_flaps(self):
        sim, net, got, channel = self.make_bounded(max_queue=4)
        sends = 0

        def account():
            assert len(got) + channel.pending + channel.stats.spilled == sends

        # burst while up, explicit flush mid-burst
        for i in range(3):
            channel.send("note", sends); sends += 1
        channel.flush()
        sim.run_until(sim.now + 1.0)
        account()
        # link drops; queue fills to the bound, then spills oldest
        net.set_link_state("a", "b", False)
        for i in range(7):
            channel.send("note", sends); sends += 1
            account()
        assert channel.backpressure
        assert channel.stats.spilled == 3
        # a flush while down must hold, not leak into the dead link
        held_before = channel.stats.held_flushes
        channel.flush()
        assert channel.stats.held_flushes > held_before
        account()
        # link restores mid-send: backlog drains, late sends ride along
        net.set_link_state("a", "b", True)
        channel.send("note", sends); sends += 1
        sim.run_until(sim.now + 3.0)
        account()
        assert channel.pending == 0
        assert not channel.backpressure
        # the freshest payloads survived; nothing delivered twice
        delivered = [payload for _kind, payload in got]
        assert len(delivered) == len(set(delivered)) == sends - channel.stats.spilled

    def test_pool_backpressured_tracks_flap_cycles(self):
        sim = Simulator()
        net = Network(sim, seed=13)
        for node in ("a", "b", "c"):
            net.add_node(node, lambda m: None)
        pool = ChannelPool(net, "a", policy=WirePolicy(max_delay=1.0, max_queue=2))
        for cycle in range(3):
            net.set_link_state("a", "b", False)
            pool.to("b").send("note", (cycle, 0))
            pool.to("b").send("note", (cycle, 1))
            pool.to("c").send("note", (cycle, 2))
            assert pool.backpressured() == [pool.to("b")]
            net.set_link_state("a", "b", True)
            sim.run_until(sim.now + 3.0)
            assert pool.backpressured() == []
            assert pool.to("b").pending == 0

    def test_spill_accounting_survives_flush_during_outage(self):
        """Interleaving explicit flushes with an outage must not double
        count spills or revive spilled payloads on link-up."""
        sim, net, got, channel = self.make_bounded(max_queue=2)
        net.set_link_state("a", "b", False)
        for i in range(5):
            channel.send("note", i)
            channel.flush()                  # held every time: link is down
        assert channel.pending == 2
        assert channel.stats.spilled == 3
        spilled_before = channel.stats.spilled
        net.set_link_state("a", "b", True)
        sim.run_until(sim.now + 3.0)
        assert [payload for _kind, payload in got] == [3, 4]
        assert channel.stats.spilled == spilled_before
