"""Unit tests for the heartbeat protocol of section 4.10."""

import pytest

from repro.runtime.heartbeat import connect_heartbeat
from repro.runtime.network import Link, Network
from repro.runtime.simulator import Simulator


def make_world(period=1.0, **monitor_kwargs):
    sim = Simulator()
    net = Network(sim, seed=11)
    sender, monitor = connect_heartbeat(net, "svc", "cli", period, **monitor_kwargs)
    return sim, net, sender, monitor


def test_heartbeats_flow_when_idle():
    sim, net, sender, monitor = make_world(period=1.0)
    sender.start()
    sim.run_until(10.0)
    assert sender.stats.heartbeats_sent >= 9
    assert not monitor.suspect


def test_payloads_delivered_in_order():
    got = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_payload=lambda p, h: got.append(p)
    )
    sender.start()
    sim.schedule(0.5, sender.send_payload, "a")
    sim.schedule(0.6, sender.send_payload, "b")
    sim.run_until(5.0)
    assert got == ["a", "b"]


def test_silence_triggers_suspicion_within_grace():
    suspected = []
    sim, net, sender, monitor = make_world(
        period=1.0, grace=2.0, on_suspect=lambda: suspected.append(sim.now)
    )
    sender.start()
    sim.run_until(5.0)
    net.partition({"svc"}, {"cli"})
    sim.run_until(20.0)
    assert monitor.suspect
    assert suspected
    # detection within grace*period + one watchdog period of the cut at t=5
    assert suspected[0] <= 5.0 + 2.0 * 1.0 + 1.0 + 1e-9


def test_restore_after_heal():
    restored = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_restore=lambda: restored.append(sim.now)
    )
    sender.start()
    sim.run_until(3.0)
    net.partition({"svc"}, {"cli"})
    sim.run_until(10.0)
    assert monitor.suspect
    net.heal({"svc"}, {"cli"})
    sim.run_until(15.0)
    assert not monitor.suspect
    assert restored


def test_lost_payload_is_resent_via_nack():
    got = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_payload=lambda p, h: got.append(p)
    )
    sender.start()
    # drop exactly the window around the payload send
    sim.schedule(4.9, net.partition, {"svc"}, {"cli"})
    sim.schedule(5.0, sender.send_payload, "precious")
    sim.schedule(5.1, net.heal, {"svc"}, {"cli"})
    sim.run_until(30.0)
    assert "precious" in got
    assert monitor.stats.gaps_detected >= 1
    assert sender.stats.resends >= 1


def test_horizon_advances_with_heartbeats():
    horizons = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_horizon=lambda h: horizons.append(h)
    )
    sender.start()
    sim.run_until(5.0)
    assert horizons == sorted(horizons)
    assert monitor.horizon >= 3.0


def test_acks_prune_sender_state():
    sim, net, sender, monitor = make_world(period=1.0, ack_every=2)
    sender.start()
    for i in range(6):
        sim.schedule(0.1 * i + 0.05, sender.send_payload, i)
    sim.run_until(10.0)
    assert len(sender._unacked) == 0


def test_detection_latency_scales_with_period():
    """Slower heartbeats -> later detection (the sec 6.8.3 trade-off)."""
    latencies = {}
    for period in (0.5, 4.0):
        suspected = []
        sim = Simulator()
        net = Network(sim, seed=5)
        sender, monitor = connect_heartbeat(
            net, "svc", "cli", period, on_suspect=lambda: suspected.append(sim.now)
        )
        sender.start()
        sim.run_until(20.0)
        net.partition({"svc"}, {"cli"})
        sim.run_until(100.0)
        latencies[period] = suspected[0] - 20.0
    assert latencies[0.5] < latencies[4.0]
