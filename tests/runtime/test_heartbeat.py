"""Unit tests for the heartbeat protocol of section 4.10."""

import pytest

from repro.runtime.heartbeat import HeartbeatMonitor, HeartbeatSender, connect_heartbeat
from repro.runtime.network import Link, Network
from repro.runtime.simulator import Simulator


def make_world(period=1.0, **monitor_kwargs):
    sim = Simulator()
    net = Network(sim, seed=11)
    sender, monitor = connect_heartbeat(net, "svc", "cli", period, **monitor_kwargs)
    return sim, net, sender, monitor


def test_heartbeats_flow_when_idle():
    sim, net, sender, monitor = make_world(period=1.0)
    sender.start()
    sim.run_until(10.0)
    assert sender.stats.heartbeats_sent >= 9
    assert not monitor.suspect


def test_payloads_delivered_in_order():
    got = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_payload=lambda p, h: got.append(p)
    )
    sender.start()
    sim.schedule(0.5, sender.send_payload, "a")
    sim.schedule(0.6, sender.send_payload, "b")
    sim.run_until(5.0)
    assert got == ["a", "b"]


def test_silence_triggers_suspicion_within_grace():
    suspected = []
    sim, net, sender, monitor = make_world(
        period=1.0, grace=2.0, on_suspect=lambda: suspected.append(sim.now)
    )
    sender.start()
    sim.run_until(5.0)
    net.partition({"svc"}, {"cli"})
    sim.run_until(20.0)
    assert monitor.suspect
    assert suspected
    # detection within grace*period + one watchdog period of the cut at t=5
    assert suspected[0] <= 5.0 + 2.0 * 1.0 + 1.0 + 1e-9


def test_restore_after_heal():
    restored = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_restore=lambda: restored.append(sim.now)
    )
    sender.start()
    sim.run_until(3.0)
    net.partition({"svc"}, {"cli"})
    sim.run_until(10.0)
    assert monitor.suspect
    net.heal({"svc"}, {"cli"})
    sim.run_until(15.0)
    assert not monitor.suspect
    assert restored


def test_lost_payload_is_resent_via_nack():
    got = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_payload=lambda p, h: got.append(p)
    )
    sender.start()
    # drop exactly the window around the payload send
    sim.schedule(4.9, net.partition, {"svc"}, {"cli"})
    sim.schedule(5.0, sender.send_payload, "precious")
    sim.schedule(5.1, net.heal, {"svc"}, {"cli"})
    sim.run_until(30.0)
    assert "precious" in got
    assert monitor.stats.gaps_detected >= 1
    assert sender.stats.resends >= 1


def test_horizon_advances_with_heartbeats():
    horizons = []
    sim, net, sender, monitor = make_world(
        period=1.0, on_horizon=lambda h: horizons.append(h)
    )
    sender.start()
    sim.run_until(5.0)
    assert horizons == sorted(horizons)
    assert monitor.horizon >= 3.0


def test_acks_prune_sender_state():
    sim, net, sender, monitor = make_world(period=1.0, ack_every=2)
    sender.start()
    for i in range(6):
        sim.schedule(0.1 * i + 0.05, sender.send_payload, i)
    sim.run_until(10.0)
    assert len(sender._unacked) == 0


def make_bare_monitor(on_payload=None, ack_every=1):
    """A monitor fed by hand, with the sender side captured for inspection."""
    sim = Simulator()
    net = Network(sim, seed=1)
    to_sender = []
    net.add_node("svc", lambda m: to_sender.append((m.kind, m.payload)))
    monitor = HeartbeatMonitor(
        net, "cli", "svc", period=1.0, ack_every=ack_every, on_payload=on_payload
    )
    net.add_node("cli", lambda m: monitor.handle_message(m.kind, m.payload))
    return sim, monitor, to_sender


def test_ack_is_last_contiguous_not_last_seen():
    """Regression: acking past an unfilled gap lets the sender discard
    the very records the pending nack needs — the lost payload would be
    dropped forever.  The ack must stop at the contiguous prefix."""
    sim, monitor, to_sender = make_bare_monitor()
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 3, "payload": "c", "horizon": 0.0})
    sim.run_until(0.5)
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert acks[-1] == 1  # seq 2 outstanding: 3 must stay buffered at the sender
    nacks = [p["missing"] for k, p in to_sender if k == "heartbeat-nack"]
    assert [2] in nacks


def test_ack_advances_once_gap_fills():
    sim, monitor, to_sender = make_bare_monitor()
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 3, "payload": "c", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 2, "payload": "b", "horizon": 0.0})
    sim.run_until(0.5)
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert acks[-1] == 3


def test_delivery_holds_at_gap_and_resumes_in_order():
    """Regression: buffered payloads past an unfilled gap must not be
    delivered early — a resent message would arrive after its
    successors."""
    got = []
    sim, monitor, to_sender = make_bare_monitor(on_payload=lambda p, h: got.append(p))
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 3, "payload": "c", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 4, "payload": "d", "horizon": 0.0})
    assert got == ["a"]  # c and d held: 2 is missing
    monitor.handle_message("heartbeat-payload", {"seq": 2, "payload": "b", "horizon": 0.0})
    assert got == ["a", "b", "c", "d"]


def test_duplicate_resends_deliver_once():
    got = []
    sim, monitor, to_sender = make_bare_monitor(on_payload=lambda p, h: got.append(p))
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 2, "payload": "b", "horizon": 0.0})
    assert got == ["a", "b"]


def test_lost_bare_heartbeat_does_not_stall_delivery():
    """A nacked gap left by a bare heartbeat (no payload) is filled by
    the sender's filler resend, so later payloads still deliver."""
    got = []
    sim, net, sender, monitor = make_world(period=1.0, on_payload=lambda p, h: got.append(p))
    sender.start()
    # drop only the t=2.0 heartbeat, then send a payload afterwards
    sim.schedule(1.9, net.partition, {"svc"}, {"cli"})
    sim.schedule(2.1, net.heal, {"svc"}, {"cli"})
    sim.schedule(2.5, sender.send_payload, "after-gap")
    sim.run_until(20.0)
    assert got == ["after-gap"]


def test_lossy_network_delivers_all_payloads_in_order():
    """End-to-end under sustained random loss in both directions: every
    payload arrives, exactly once, in send order (nack + watchdog re-nack
    + contiguous acks)."""
    got = []
    sim = Simulator()
    net = Network(sim, seed=7)
    sender, monitor = connect_heartbeat(
        net, "svc", "cli", 1.0, ack_every=2, on_payload=lambda p, h: got.append(p)
    )
    net.set_link("svc", "cli", Link(base_delay=0.01, loss_probability=0.3))
    net.set_link("cli", "svc", Link(base_delay=0.01, loss_probability=0.3))
    sender.start()
    for i in range(30):
        sim.schedule(0.3 * i + 0.05, sender.send_payload, i)
    sim.run_until(400.0)
    assert got == list(range(30))
    assert monitor.stats.gaps_detected >= 1
    assert sender.stats.resends >= 1
    assert len(sender._unacked) == 0  # everything eventually acked contiguously


def test_multiple_lost_bare_heartbeats_refill_in_one_message():
    """All bare-heartbeat gaps named by one nack ride a single
    'heartbeat-fillers' message rather than one filler each."""
    got = []
    kinds = []
    sim = Simulator()
    net = Network(sim, seed=11)
    sender, monitor = connect_heartbeat(
        net, "svc", "cli", 1.0, on_payload=lambda p, h: got.append(p)
    )
    cli = net.node("cli")
    inner = cli.handler

    def tap(message):
        kinds.append(message.kind)
        inner(message)

    cli.handler = tap
    sender.start()
    # drop three consecutive bare heartbeats (t=2, t=3, t=4)
    sim.schedule(1.5, net.partition, {"svc"}, {"cli"})
    sim.schedule(4.5, net.heal, {"svc"}, {"cli"})
    sim.schedule(5.2, sender.send_payload, "after-gaps")
    sim.run_until(20.0)
    assert got == ["after-gaps"]
    assert monitor._contiguous == monitor._max_seen
    # the three fillers shared one message
    filler_messages = kinds.count("heartbeat-fillers")
    assert filler_messages == 1
    assert sender.stats.resends >= 3


def test_filler_batch_advances_contiguous_prefix_and_ack():
    """A fillers message closes every gap it names: the contiguous
    prefix jumps past all of them and the next ack reflects that."""
    sim, monitor, to_sender = make_bare_monitor(ack_every=1)
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    monitor.handle_message("heartbeat-payload", {"seq": 5, "payload": "e", "horizon": 0.0})
    sim.run_until(0.2)
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert acks[-1] == 1  # 2..4 outstanding
    monitor.handle_message("heartbeat-fillers", {"seqs": [2, 3, 4], "horizon": 0.0})
    sim.run_until(0.4)
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert acks[-1] == 5


def test_ack_stays_at_contiguous_prefix_with_batched_payloads():
    """Batched (back-to-back, same-instant) payloads around a gap do not
    let the ack run past the gap."""
    got = []
    sim, monitor, to_sender = make_bare_monitor(
        on_payload=lambda p, h: got.append(p), ack_every=1
    )
    # a "batch" of payloads 3..5 arrives while 2 is missing
    monitor.handle_message("heartbeat-payload", {"seq": 1, "payload": "a", "horizon": 0.0})
    for seq, payload in ((3, "c"), (4, "d"), (5, "e")):
        monitor.handle_message(
            "heartbeat-payload", {"seq": seq, "payload": payload, "horizon": 0.0}
        )
    sim.run_until(0.2)
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert max(acks) == 1          # never past the gap
    assert got == ["a"]            # delivery held at the gap
    monitor.handle_message("heartbeat-payload", {"seq": 2, "payload": "b", "horizon": 0.0})
    sim.run_until(0.4)
    assert got == ["a", "b", "c", "d", "e"]
    acks = [p["ack"] for k, p in to_sender if k == "heartbeat-ack"]
    assert acks[-1] == 5


def test_filler_resend_counts_each_gap():
    sim = Simulator()
    net = Network(sim, seed=3)
    to_cli = []
    net.add_node("cli", lambda m: to_cli.append((m.kind, m.payload)))
    sender = HeartbeatSender(net, "svc", "cli", period=1.0)
    net.add_node("svc", lambda m: None)
    sender.start()
    sim.run_until(3.5)   # seqs 1..4 sent as bare heartbeats
    sender.handle_nack([2, 3])
    sim.run_until(4.0)
    fillers = [p for k, p in to_cli if k == "heartbeat-fillers"]
    assert len(fillers) == 1
    assert fillers[0]["seqs"] == [2, 3]
    assert sender.stats.resends >= 2


def test_detection_latency_scales_with_period():
    """Slower heartbeats -> later detection (the sec 6.8.3 trade-off)."""
    latencies = {}
    for period in (0.5, 4.0):
        suspected = []
        sim = Simulator()
        net = Network(sim, seed=5)
        sender, monitor = connect_heartbeat(
            net, "svc", "cli", period, on_suspect=lambda: suspected.append(sim.now)
        )
        sender.start()
        sim.run_until(20.0)
        net.partition({"svc"}, {"cli"})
        sim.run_until(100.0)
        latencies[period] = suspected[0] - 20.0
    assert latencies[0.5] < latencies[4.0]


# ---------------------------------------------------------------- flapping


def test_flapping_callbacks_alternate_and_end_suspect():
    """Rapid down/up/down cycles: suspicion/restore callbacks strictly
    alternate, and after the final cut no stale 'restored' arrives — the
    monitor ends (and stays) suspect."""
    events = []
    sim, net, sender, monitor = make_world(
        period=1.0,
        grace=2.0,
        on_suspect=lambda: events.append(("suspect", sim.now)),
        on_restore=lambda: events.append(("restore", sim.now)),
    )
    sender.start()
    # three full flaps, then a final cut that never heals
    for start in (5.0, 20.0, 35.0):
        sim.schedule(start, net.partition, {"svc"}, {"cli"})
        sim.schedule(start + 6.0, net.heal, {"svc"}, {"cli"})
    sim.schedule(50.0, net.partition, {"svc"}, {"cli"})
    sim.run_until(80.0)
    kinds = [k for k, _ in events]
    # strict alternation: no double-suspect, no double-restore
    for a, b in zip(kinds, kinds[1:]):
        assert a != b, f"non-alternating callbacks: {events}"
    assert kinds[0] == "suspect"
    assert kinds[-1] == "suspect"    # the last cut is never unmasked
    assert monitor.suspect


def test_flapping_last_transition_wins_per_cycle():
    """Each heal is observed before the next cut: the restore for flap N
    never arrives after the suspicion of flap N+1 (no stale unmask)."""
    events = []
    sim, net, sender, monitor = make_world(
        period=1.0,
        grace=2.0,
        on_suspect=lambda: events.append(("suspect", sim.now)),
        on_restore=lambda: events.append(("restore", sim.now)),
    )
    sender.start()
    for start in (4.0, 12.0, 20.0, 28.0):
        sim.schedule(start, net.partition, {"svc"}, {"cli"})
        sim.schedule(start + 4.0, net.heal, {"svc"}, {"cli"})
    sim.run_until(60.0)
    times = [t for _, t in events]
    assert times == sorted(times)
    assert not monitor.suspect
    assert monitor.stats.suspicions == 4
    restores = [t for k, t in events if k == "restore"]
    assert len(restores) == 4


# ------------------------------------------------------------- boot epochs


def make_epoch_world(period=1.0, **monitor_kwargs):
    sim = Simulator()
    net = Network(sim, seed=13)
    epoch_box = [1]
    sender = HeartbeatSender(net, "svc", "cli", period, epoch=lambda: epoch_box[0])
    monitor = HeartbeatMonitor(net, "cli", "svc", period, **monitor_kwargs)

    def svc_node(message):
        if message.kind == "heartbeat-ack":
            sender.handle_ack(message.payload["ack"])
        elif message.kind == "heartbeat-nack":
            sender.handle_nack(message.payload["missing"])

    net.add_node("svc", svc_node)
    net.add_node("cli", lambda m: monitor.handle_message(m.kind, m.payload))
    return sim, net, sender, monitor, epoch_box


def test_epoch_change_fires_callback_and_resets_sequences():
    changes = []
    got = []
    sim, net, sender, monitor, epoch_box = make_epoch_world(
        on_epoch_change=lambda old, new: changes.append((old, new, sim.now)),
        on_payload=lambda p, h: got.append(p),
    )
    sender.start()
    sim.run_until(5.0)
    assert monitor.sender_epoch == 1
    old_max = monitor._max_seen
    assert old_max >= 4
    # crash-restart: new epoch, sequence numbering starts over
    epoch_box[0] = 2
    sender.restart()
    sim.run_until(6.5)
    sender.send_payload("post-crash")
    sim.run_until(10.0)
    assert changes and changes[0][:2] == (1, 2)
    assert monitor.sender_epoch == 2
    # the restarted numbering was accepted (no false duplicate-drop)
    assert got == ["post-crash"]
    assert monitor.stats.epoch_changes == 1
    # the restart did not read as a giant backwards gap
    assert monitor.stats.gaps_detected == 0
    assert monitor._max_seen <= old_max + 2


def test_stale_epoch_traffic_is_dropped_and_not_liveness():
    sim, net, sender, monitor, epoch_box = make_epoch_world(grace=2.0)
    sender.start()
    sim.run_until(3.0)
    # the sender restarts into epoch 2
    epoch_box[0] = 2
    sender.restart()
    sim.run_until(5.0)
    assert monitor.sender_epoch == 2
    # a delayed message from the dead epoch arrives late: dropped, and it
    # must not count as hearing from the (current) sender
    monitor.handle_message("heartbeat", {"seq": 99, "horizon": 0.0, "epoch": 1})
    assert monitor.stats.stale_epoch_dropped == 1
    assert monitor._max_seen < 99


def test_epoch_change_fires_before_restore_while_still_suspect():
    """The epoch callback must run while the monitor is still suspect, so
    fail-closed masking/resync happens before any unmask."""
    order = []
    sim, net, sender, monitor, epoch_box = make_epoch_world(
        grace=2.0,
        on_restore=lambda: order.append("restore"),
        on_epoch_change=lambda old, new: order.append(
            ("epoch", monitor.suspect)
        ),
    )
    sender.start()
    sim.run_until(3.0)
    net.partition({"svc"}, {"cli"})
    sim.run_until(10.0)
    assert monitor.suspect
    epoch_box[0] = 2
    sender.restart()
    net.heal({"svc"}, {"cli"})
    sim.run_until(15.0)
    assert order[0] == ("epoch", True)   # fired first, still suspect
    assert "restore" in order
    assert order.index(("epoch", True)) < order.index("restore")


def test_sender_stop_start_does_not_double_tick_rate():
    sim, net, sender, monitor, epoch_box = make_epoch_world()
    sender.start()
    sim.run_until(5.0)
    sender.stop()
    sender.start()   # old tick chain must die, not double the rate
    sent_before = sender.stats.heartbeats_sent
    sim.run_until(15.0)
    sent = sender.stats.heartbeats_sent - sent_before
    assert sent <= 11   # ~one per period, not two


def test_quiet_interval_wakeup_survives_negative_float_residue():
    """Satellite regression: piggybacked liveness reschedules the tick to
    ``due - now``, which float accumulation can leave fractionally
    negative.  The chain must clamp and keep beating, not die with
    'cannot schedule in the past'."""
    sim, net, sender, monitor = make_world(period=0.1)
    sender.start()
    # payloads at times that are not exactly representable multiples of
    # the period, so due - now picks up float residue at many wake-ups
    for i in range(1, 200):
        sim.schedule_at(i * 0.049999999999999996, sender.send_payload, i)
    sim.run_until(12.0)
    # liveness never lapsed: the monitor saw a signal at least every period
    assert not monitor.suspect
    assert monitor.stats.suspicions == 0
    # and the tick chain is still alive well past the piggyback window
    before = sender.stats.heartbeats_sent
    sim.run_until(14.0)
    assert sender.stats.heartbeats_sent > before
