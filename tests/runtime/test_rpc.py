"""Unit tests for the RPC layer."""

import pytest

from repro.runtime.network import Link, Network
from repro.runtime.rpc import RpcEndpoint, RpcError
from repro.runtime.simulator import Simulator


def make_pair():
    sim = Simulator()
    net = Network(sim, seed=3)
    server = RpcEndpoint(net, "server")
    client = RpcEndpoint(net, "client")
    return sim, net, server, client


def test_roundtrip():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 2, 3)
    assert not future.done
    sim.run()
    assert future.result() == 5


def test_kwargs_passed():
    sim, net, server, client = make_pair()
    server.register("greet", lambda name, punct="!": f"hi {name}{punct}")
    future = client.call("server", "greet", "bob", punct="?")
    sim.run()
    assert future.result() == "hi bob?"


def test_unknown_method_fails():
    sim, net, server, client = make_pair()
    future = client.call("server", "nope")
    sim.run()
    assert future.failed
    with pytest.raises(RpcError, match="unknown method"):
        future.result()


def test_remote_exception_propagates():
    sim, net, server, client = make_pair()

    def boom():
        raise ValueError("bad input")

    server.register("boom", boom)
    future = client.call("server", "boom")
    sim.run()
    with pytest.raises(RpcError, match="ValueError: bad input"):
        future.result()


def test_timeout_fires_when_partitioned():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    net.partition({"client"}, {"server"})
    future = client.call("server", "add", 1, 1, timeout=2.0)
    sim.run()
    assert future.failed
    with pytest.raises(RpcError, match="timeout"):
        future.result()


def test_timeout_cancelled_on_success():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 1, 1, timeout=60.0)
    sim.run()
    assert future.result() == 2
    assert sim.now < 1.0  # did not wait for the timeout


def test_result_before_done_raises():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 1, 1)
    with pytest.raises(RpcError, match="not yet complete"):
        future.result()


def test_on_done_callback():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    results = []
    future = client.call("server", "add", 4, 4)
    future.on_done(lambda f: results.append(f.result()))
    sim.run()
    assert results == [8]


def test_on_done_after_completion_fires_immediately():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 4, 4)
    sim.run()
    results = []
    future.on_done(lambda f: results.append(f.result()))
    assert results == [8]


def test_one_way_event_notification():
    sim, net, server, client = make_pair()
    got = []
    client.on_event("news", lambda src, payload: got.append((src, payload)))
    server.notify("client", "news", {"headline": "x"})
    sim.run()
    assert got == [("server", {"headline": "x"})]


def test_default_timeout_reaps_lost_reply():
    """Regression: a call with no explicit timeout whose reply is lost
    must not leave its pending record in the endpoint forever."""
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    # request delivered, reply dropped by loss on the return link
    net.set_link("server", "client", Link(loss_probability=1.0))
    future = client.call("server", "add", 1, 1)
    sim.run()
    assert future.failed
    with pytest.raises(RpcError, match="timeout"):
        future.result()
    assert client._pending == {}


def test_explicit_none_timeout_waits_forever_but_fails_on_link_down():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    net.set_link("server", "client", Link(loss_probability=1.0))
    future = client.call("server", "add", 1, 1, timeout=None)
    sim.run_until(1000.0)
    assert not future.done  # no timeout was armed
    net.partition({"client"}, {"server"})
    assert future.failed
    with pytest.raises(RpcError, match="link down"):
        future.result()
    assert client._pending == {}


def test_link_down_fails_pending_calls_promptly():
    """A partition while a call is in flight fails it immediately rather
    than making the caller wait out the full timeout."""
    sim, net, server, client = make_pair()
    never = []
    server.register("slow", lambda: never.append(1))
    net.set_link("client", "server", Link(base_delay=5.0))
    future = client.call("server", "slow", timeout=120.0)
    sim.run_until(1.0)
    net.partition({"client"}, {"server"})
    assert future.failed
    assert sim.now < 2.0  # did not wait for the 120s timeout
    assert client._pending == {}


def test_link_down_between_other_nodes_leaves_pending_calls_alone():
    sim, net, server, client = make_pair()
    net.add_node("bystander", lambda m: None)
    server.register("add", lambda a, b: a + b)
    net.set_link("client", "server", Link(base_delay=1.0))
    future = client.call("server", "add", 1, 1)
    net.partition({"bystander"}, {"server"})
    sim.run_until(5.0)
    assert future.result() == 2


def test_rpc_latency_matches_link():
    sim, net, server, client = make_pair()
    net.set_link("client", "server", Link(base_delay=0.1))
    net.set_link("server", "client", Link(base_delay=0.2))
    server.register("noop", lambda: None)
    future = client.call("server", "noop")
    done_at = []
    future.on_done(lambda f: done_at.append(sim.now))
    sim.run()
    assert done_at[0] == pytest.approx(0.3)


# ----------------------------------------------------------- retry machinery

from repro.runtime.rpc import RetryPolicy


def test_retry_succeeds_across_transient_partition():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    net.partition({"client"}, {"server"})
    policy = RetryPolicy(max_attempts=6, base_delay=0.5, multiplier=2.0, jitter=0.1)
    future = client.call("server", "add", 2, 2, timeout=1.0, retry=policy)
    sim.schedule(3.0, net.heal, {"client"}, {"server"})
    sim.run_until(60.0)
    assert future.result() == 4
    assert client.stats.retries >= 1
    assert server.stats.executions == 1


def test_retry_budget_exhausted_fails_with_attempt_count():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    net.partition({"client"}, {"server"})
    policy = RetryPolicy(max_attempts=3, base_delay=0.1, retry_on_link_down=False)
    future = client.call("server", "add", 1, 1, timeout=0.5, retry=policy)
    sim.run_until(60.0)
    assert future.failed
    with pytest.raises(RpcError) as excinfo:
        future.result()
    err = excinfo.value
    assert err.dest == "server"
    assert err.method == "add"
    assert err.attempts == 3
    assert "timeout" in str(err)
    assert "'add'" in str(err) and "'server'" in str(err) and "3 attempt(s)" in str(err)


def test_remote_exception_is_not_retried():
    sim, net, server, client = make_pair()
    calls = []

    def boom():
        calls.append(1)
        raise ValueError("bad input")

    server.register("boom", boom)
    policy = RetryPolicy(max_attempts=5, base_delay=0.1)
    future = client.call("server", "boom", retry=policy)
    sim.run()
    with pytest.raises(RpcError, match="ValueError: bad input"):
        future.result()
    assert len(calls) == 1  # a definite remote answer is never retried


def test_at_most_once_under_network_duplication():
    """Every message (request AND reply) is duplicated by the fault
    injector, yet the counting handler runs exactly once per call."""
    sim, net, server, client = make_pair()
    count = [0]

    def bump(n):
        count[0] += 1
        return n

    server.register("bump", bump)
    net.set_fault_injector(lambda message, delay: [delay, delay + 0.002])
    futures = [client.call("server", "bump", i) for i in range(20)]
    sim.run()
    assert [f.result() for f in futures] == list(range(20))
    assert count[0] == 20
    assert server.stats.executions == 20
    assert server.stats.duplicates_suppressed >= 20
    assert net.stats.duplicated >= 40


def test_at_most_once_when_reply_lost_and_retried():
    """The request arrives and executes, the reply dies; the retry must be
    answered from the dedup cache, not re-execute the handler."""
    sim, net, server, client = make_pair()
    count = [0]

    def bump():
        count[0] += 1
        return count[0]

    server.register("bump", bump)
    # first reply lost, later replies pass
    net.set_link("server", "client", Link(loss_probability=1.0))
    sim.schedule(1.0, net.set_link, "server", "client", Link())
    policy = RetryPolicy(max_attempts=4, base_delay=0.6, jitter=0.0)
    future = client.call("server", "bump", timeout=0.5, retry=policy)
    sim.run_until(30.0)
    assert future.result() == 1
    assert count[0] == 1                      # executed once, not per attempt
    assert client.stats.retries >= 1
    assert server.stats.replies_resent >= 1


def test_dedup_window_expires():
    sim, net, server, client = make_pair()
    count = [0]

    def bump():
        count[0] += 1
        return count[0]

    server.register("bump", bump)
    future = client.call("server", "bump")
    sim.run()
    assert future.result() == 1
    assert len(server._served) == 1
    # after the window, the next request purges the forgotten entry
    sim.run_until(sim.now + server.dedup_window + 1.0)
    future2 = client.call("server", "bump")
    sim.run()
    assert future2.result() == 2
    assert len(server._served) == 1  # only the fresh call remains


def _queued_entries(sim):
    """Every entry tuple still physically queued in the wheel kernel."""
    for level in (sim._l0, sim._l1, sim._l2):
        for slot in level:
            yield from slot
    yield from sim._overflow


def test_cancelled_timeouts_do_not_accumulate_in_simulator():
    """Satellite regression: a reply arriving well before the timeout
    must free the timer event (callback and, eventually, its queue slot)
    — long soaks otherwise accumulate dead _PendingCall timers for the
    full 60-second default timeout."""
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    n = 600
    for i in range(n):
        future = client.call("server", "add", i, 1)
        sim.run_until(sim.now + 0.01)
        assert future.result() == i + 1
    # cancelled entries must never keep their closures alive...
    assert all(
        entry.fn is None
        for _, _, entry in _queued_entries(sim)
        if entry.cancelled and not entry.reusable
    )
    # ...and compaction keeps the queue from growing linearly with calls
    assert sum(1 for _ in _queued_entries(sim)) < n
    assert sim.cancelled_pending() <= 256
    assert client._pending == {}


# ---------------------------------------------------------------- ISSUE 6

from repro.runtime.rpc import BreakerPolicy


def test_spurious_timeout_does_not_count():
    """Satellite regression: a timeout firing for a call that already
    resolved must not bump ``stats.timeouts``."""
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 1, 2, timeout=5.0)
    sim.run_until(1.0)
    assert future.result() == 3
    # fire the (stale) timeout path by hand — the timer itself was
    # cancelled at resolve, so this models a spurious/stale firing
    client._on_timeout(1)
    assert client.stats.timeouts == 0


def test_real_timeout_still_counts():
    sim, net, server, client = make_pair()
    net.partition({"client"}, {"server"})
    future = client.call("server", "add", 1, 2, timeout=0.5)
    sim.run_until(5.0)
    assert future.failed
    assert client.stats.timeouts == 1


def make_breaker_pair(threshold=3, cooldown=1.0):
    sim = Simulator()
    net = Network(sim, seed=3)
    server = RpcEndpoint(net, "server")
    client = RpcEndpoint(
        net,
        "client",
        breaker=BreakerPolicy(failure_threshold=threshold, cooldown=cooldown),
    )
    return sim, net, server, client


def test_breaker_opens_after_consecutive_failures_and_fails_fast():
    sim, net, server, client = make_breaker_pair(threshold=3, cooldown=10.0)
    server.register("add", lambda a, b: a + b)
    net.node("server").up = False            # silent peer: every attempt times out
    futures = [client.call("server", "add", i, 1, timeout=0.5) for i in range(3)]
    sim.run_until(5.0)
    assert all(f.failed for f in futures)
    assert client.stats.breaker_opens == 1
    sent_before = client.stats.requests_sent
    fast = client.call("server", "add", 9, 9, timeout=0.5)
    sim.run_until(6.0)
    assert fast.failed
    with pytest.raises(RpcError, match="circuit open"):
        fast.result()
    # the fast-failed call never touched the wire
    assert client.stats.requests_sent == sent_before
    assert client.stats.breaker_fast_failures == 1


def test_breaker_half_open_probe_closes_on_recovery():
    sim, net, server, client = make_breaker_pair(threshold=3, cooldown=2.0)
    server.register("add", lambda a, b: a + b)
    net.node("server").up = False
    for i in range(3):
        client.call("server", "add", i, 1, timeout=0.5)
    sim.run_until(5.0)
    assert client.stats.breaker_opens == 1
    net.node("server").up = True             # peer recovers during cooldown
    sim.run_until(10.0)                      # let the cooldown elapse
    probe = client.call("server", "add", 2, 2, timeout=0.5)
    sim.run_until(11.0)
    assert probe.result() == 4
    assert client.stats.breaker_probes == 1
    assert client.stats.breaker_closes == 1
    after = client.call("server", "add", 3, 3, timeout=0.5)
    sim.run_until(12.0)
    assert after.result() == 6               # circuit closed again


def test_breaker_half_open_probe_failure_reopens():
    sim, net, server, client = make_breaker_pair(threshold=3, cooldown=2.0)
    net.node("server").up = False
    for i in range(3):
        client.call("server", "add", i, 1, timeout=0.5)
    sim.run_until(5.0)
    probe = client.call("server", "add", 2, 2, timeout=0.5)   # half-open probe
    shed = client.call("server", "add", 3, 3, timeout=0.5)    # beyond the probe budget
    sim.run_until(8.0)
    assert probe.failed and shed.failed
    with pytest.raises(RpcError, match="circuit open"):
        shed.result()
    assert client.stats.breaker_probes == 1
    assert client.stats.breaker_opens == 2   # the failed probe re-opened it


def test_remote_exception_counts_as_peer_alive():
    """A remote error is a definite answer: it must reset the breaker,
    not walk it toward open."""
    sim, net, server, client = make_breaker_pair(threshold=2, cooldown=1.0)

    def boom():
        raise ValueError("bad")

    server.register("boom", boom)
    for _ in range(5):
        future = client.call("server", "boom", timeout=1.0)
        sim.run_until(sim.now + 2.0)
        assert future.failed
    assert client.stats.breaker_opens == 0


def test_retransmission_into_down_link_fails_fast():
    """Satellite regression: retries toward a link the endpoint observed
    down must not wait out the full per-attempt timeout each."""
    from repro.runtime.rpc import RetryPolicy

    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    policy = RetryPolicy(max_attempts=5, base_delay=0.2, multiplier=1.0, jitter=0.0)
    future = client.call("server", "add", 1, 1, timeout=10.0, retry=policy)
    net.partition({"client"}, {"server"})    # dooms attempt 1, observed down
    sim.run_until(60.0)
    assert future.failed
    # all remaining attempts drained at backoff pace (0.2s each), not at
    # the 10s per-attempt timeout: the whole call dies in ~1s
    assert client.stats.link_down_fast_fails >= 3
    assert client.stats.timeouts == 0
    # only the first attempt ever hit the wire
    assert client.stats.requests_sent == 1


def test_down_link_fast_fail_recovers_after_heal():
    from repro.runtime.rpc import RetryPolicy

    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    policy = RetryPolicy(max_attempts=8, base_delay=0.5, multiplier=2.0, jitter=0.0)
    future = client.call("server", "add", 2, 2, timeout=5.0, retry=policy)
    net.partition({"client"}, {"server"})
    sim.schedule(3.0, net.heal, {"client"}, {"server"})
    sim.run_until(60.0)
    assert future.result() == 4
    assert client.stats.link_down_fast_fails >= 1
    assert server.stats.executions == 1
