"""Unit tests for the RPC layer."""

import pytest

from repro.runtime.network import Link, Network
from repro.runtime.rpc import RpcEndpoint, RpcError
from repro.runtime.simulator import Simulator


def make_pair():
    sim = Simulator()
    net = Network(sim, seed=3)
    server = RpcEndpoint(net, "server")
    client = RpcEndpoint(net, "client")
    return sim, net, server, client


def test_roundtrip():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 2, 3)
    assert not future.done
    sim.run()
    assert future.result() == 5


def test_kwargs_passed():
    sim, net, server, client = make_pair()
    server.register("greet", lambda name, punct="!": f"hi {name}{punct}")
    future = client.call("server", "greet", "bob", punct="?")
    sim.run()
    assert future.result() == "hi bob?"


def test_unknown_method_fails():
    sim, net, server, client = make_pair()
    future = client.call("server", "nope")
    sim.run()
    assert future.failed
    with pytest.raises(RpcError, match="unknown method"):
        future.result()


def test_remote_exception_propagates():
    sim, net, server, client = make_pair()

    def boom():
        raise ValueError("bad input")

    server.register("boom", boom)
    future = client.call("server", "boom")
    sim.run()
    with pytest.raises(RpcError, match="ValueError: bad input"):
        future.result()


def test_timeout_fires_when_partitioned():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    net.partition({"client"}, {"server"})
    future = client.call("server", "add", 1, 1, timeout=2.0)
    sim.run()
    assert future.failed
    with pytest.raises(RpcError, match="timeout"):
        future.result()


def test_timeout_cancelled_on_success():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 1, 1, timeout=60.0)
    sim.run()
    assert future.result() == 2
    assert sim.now < 1.0  # did not wait for the timeout


def test_result_before_done_raises():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 1, 1)
    with pytest.raises(RpcError, match="not yet complete"):
        future.result()


def test_on_done_callback():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    results = []
    future = client.call("server", "add", 4, 4)
    future.on_done(lambda f: results.append(f.result()))
    sim.run()
    assert results == [8]


def test_on_done_after_completion_fires_immediately():
    sim, net, server, client = make_pair()
    server.register("add", lambda a, b: a + b)
    future = client.call("server", "add", 4, 4)
    sim.run()
    results = []
    future.on_done(lambda f: results.append(f.result()))
    assert results == [8]


def test_one_way_event_notification():
    sim, net, server, client = make_pair()
    got = []
    client.on_event("news", lambda src, payload: got.append((src, payload)))
    server.notify("client", "news", {"headline": "x"})
    sim.run()
    assert got == [("server", {"headline": "x"})]


def test_rpc_latency_matches_link():
    sim, net, server, client = make_pair()
    net.set_link("client", "server", Link(base_delay=0.1))
    net.set_link("server", "client", Link(base_delay=0.2))
    server.register("noop", lambda: None)
    future = client.call("server", "noop")
    done_at = []
    future.on_done(lambda f: done_at.append(sim.now))
    sim.run()
    assert done_at[0] == pytest.approx(0.3)
