"""Unit tests for the simulated network fabric."""

import pytest

from repro.errors import NetworkError
from repro.runtime.network import Link, Network
from repro.runtime.simulator import Simulator


def make_net(**kwargs):
    sim = Simulator()
    return sim, Network(sim, seed=1, **kwargs)


def test_basic_delivery():
    sim, net = make_net()
    got = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: got.append(m))
    net.send("a", "b", "ping", {"x": 1})
    sim.run()
    assert len(got) == 1
    assert got[0].payload == {"x": 1}
    assert got[0].source == "a"
    assert got[0].kind == "ping"


def test_delivery_is_delayed_by_link():
    sim, net = make_net()
    times = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: times.append(sim.now))
    net.set_link("a", "b", Link(base_delay=0.25))
    net.send("a", "b", "ping", None)
    sim.run()
    assert times == [0.25]


def test_jitter_is_seeded_and_bounded():
    sim, net = make_net()
    times = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: times.append(sim.now))
    net.set_link("a", "b", Link(base_delay=0.1, jitter=0.05))
    for _ in range(50):
        net.send("a", "b", "ping", None)
    sim.run()
    assert all(0.1 <= t <= 0.15 for t in times)
    assert len(set(times)) > 1  # jitter actually varies


def test_loss_probability_drops_messages():
    sim, net = make_net()
    got = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: got.append(m))
    net.set_link("a", "b", Link(loss_probability=1.0))
    assert net.send("a", "b", "ping", None) is None
    sim.run()
    assert got == []
    assert net.messages_lost == 1


def test_partition_and_heal():
    sim, net = make_net()
    got = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: got.append(m.payload))
    net.partition({"a"}, {"b"})
    net.send("a", "b", "ping", 1)
    sim.run()
    assert got == []
    net.heal({"a"}, {"b"})
    net.send("a", "b", "ping", 2)
    sim.run()
    assert got == [2]


def test_send_to_unknown_node_counts_dropped_no_handler():
    # datagram semantics: an unregistered destination swallows the message,
    # but never silently — the drop is visible in the stats (and crash
    # support depends on sends to a dead-and-removed node not raising)
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    assert net.send("a", "nowhere", "ping", None) is None
    assert net.stats.dropped_no_handler == 1
    assert net.link_stats("a", "nowhere").dropped_no_handler == 1


def test_send_to_unknown_node_warns_when_enabled():
    sim, net = make_net()
    net.warn_no_handler = True
    net.add_node("a", lambda m: None)
    with pytest.warns(UserWarning, match="unregistered address"):
        net.send("a", "nowhere", "ping", None)


def test_duplicate_address_rejected():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    with pytest.raises(NetworkError):
        net.add_node("a", lambda m: None)


def test_down_node_drops_silently():
    sim, net = make_net()
    got = []
    net.add_node("a", lambda m: None)
    node_b = net.add_node("b", lambda m: got.append(m))
    node_b.up = False
    net.send("a", "b", "ping", None)
    sim.run()
    assert got == []
    assert node_b.dropped_while_down == 1


def test_messages_carry_monotone_seq():
    sim, net = make_net()
    seqs = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: seqs.append(m.seq))
    for _ in range(3):
        net.send("a", "b", "ping", None)
    sim.run()
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 3


def test_same_seed_same_behaviour():
    def run(seed):
        sim = Simulator()
        net = Network(sim, seed=seed)
        times = []
        net.add_node("a", lambda m: None)
        net.add_node("b", lambda m: times.append(round(sim.now, 9)))
        net.set_link("a", "b", Link(base_delay=0.01, jitter=0.02, loss_probability=0.3))
        for _ in range(100):
            net.send("a", "b", "ping", None)
        sim.run()
        return times

    assert run(7) == run(7)
    assert run(7) != run(8)


# ---------------------------------------------------------------- ISSUE 6


def test_empty_injector_delays_count_as_fault_drop():
    """Satellite regression: an injector returning [] schedules zero
    deliveries — the message must land in dropped_by_fault, not vanish."""
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    got = []
    net.add_node("b", lambda m: got.append(m))
    net.set_fault_injector(lambda message, delay: [])
    assert net.send("a", "b", "ping", 1) is None
    sim.run()
    assert got == []
    assert net.stats.dropped_by_fault == 1
    assert net.unaccounted() == 0


def test_heal_does_not_end_an_overlapping_flap():
    """Satellite regression: a partition heal must not resurrect a link
    an independent link-flap still holds down."""
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: None)
    net.partition({"a"}, {"b"})
    net.set_link_state("a", "b", False)      # overlapping flap, same link
    net.heal({"a"}, {"b"})                   # undoes only the partition
    assert not net.link("a", "b").up
    assert net.link("b", "a").up             # flap was one-directional
    net.set_link_state("a", "b", True)       # flap ends: now fully up
    assert net.link("a", "b").up


def test_flap_recovery_does_not_end_an_overlapping_partition():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: None)
    net.set_link_state("a", "b", False)
    net.partition({"a"}, {"b"})
    net.set_link_state("a", "b", True)       # flap ends first
    assert not net.link("a", "b").up         # partition still cuts it
    net.heal({"a"}, {"b"})
    assert net.link("a", "b").up


def test_overlapping_partitions_stack():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: None)
    net.partition({"a"}, {"b"})
    net.partition({"a"}, {"b"})
    net.heal({"a"}, {"b"})
    assert not net.link("a", "b").up
    net.heal({"a"}, {"b"})
    assert net.link("a", "b").up


def test_on_link_up_fires_once_per_transition():
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: None)
    ups, downs = [], []
    net.on_link_up(lambda s, d: ups.append((s, d)))
    net.on_link_down(lambda s, d: downs.append((s, d)))
    net.partition({"a"}, {"b"})
    assert ("a", "b") in downs and ("b", "a") in downs
    net.set_link_state("a", "b", False)      # already down: no second event
    assert downs.count(("a", "b")) == 1
    net.heal({"a"}, {"b"})                   # a->b stays down (flap)
    assert ("b", "a") in ups and ("a", "b") not in ups
    net.set_link_state("a", "b", True)
    assert ups.count(("a", "b")) == 1


def test_delivery_accounting_identity_holds():
    """offered == delivered + drops + in_flight at every instant."""
    sim, net = make_net()
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: None)
    net.set_link("a", "b", Link(base_delay=0.01, loss_probability=0.3))
    for _ in range(200):
        net.send("a", "b", "ping", 1)
    assert net.unaccounted() == 0            # mid-flight: in_flight covers it
    assert net.in_flight > 0
    sim.run()
    assert net.in_flight == 0
    assert net.unaccounted() == 0
    stats = net.stats
    assert stats.delivered + stats.dropped_by_loss == 200


def test_accounting_identity_with_duplicating_injector():
    sim, net = make_net()
    got = []
    net.add_node("a", lambda m: None)
    net.add_node("b", lambda m: got.append(m))
    net.set_fault_injector(lambda message, delay: [delay, delay + 0.01])
    for _ in range(50):
        net.send("a", "b", "ping", 1)
    sim.run()
    assert len(got) == 100
    assert net.stats.duplicated == 50
    assert net.stats.offered() == 100
    assert net.unaccounted() == 0
