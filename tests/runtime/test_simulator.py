"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.runtime.simulator import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_schedule_during_event_runs_later():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("nested"))

    sim.schedule(1.0, first)
    sim.schedule(3.0, lambda: order.append("third"))
    sim.run()
    assert order == ["first", "nested", "third"]


def test_cancel_prevents_execution():
    sim = Simulator()
    ran = []
    handle = sim.schedule(1.0, ran.append, "x")
    assert sim.cancel(handle) is True
    assert sim.cancel(handle) is False
    sim.run()
    assert ran == []


def test_cancel_after_run_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.cancel(handle) is False


def test_run_until_stops_at_boundary():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.schedule(3.0, order.append, "c")
    sim.run_until(2.0)
    assert order == ["a", "b"]
    assert sim.now == 2.0
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_for_advances_relative():
    sim = Simulator(start_time=10.0)
    sim.schedule(5.0, lambda: None)
    sim.run_for(2.0)
    assert sim.now == 12.0
    assert sim.pending() == 1


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_run_backwards_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(h1)
    assert sim.peek_time() == 2.0


def test_pending_counts_uncancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    sim.cancel(h1)
    assert sim.pending() == 1


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_run_returns_event_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    assert sim.run() == 7
    assert sim.events_processed == 7


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)
