"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.runtime.profile import SimProfile
from repro.runtime.simulator import PeriodicTimer, Simulator, Timer


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_schedule_during_event_runs_later():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("nested"))

    sim.schedule(1.0, first)
    sim.schedule(3.0, lambda: order.append("third"))
    sim.run()
    assert order == ["first", "nested", "third"]


def test_cancel_prevents_execution():
    sim = Simulator()
    ran = []
    handle = sim.schedule(1.0, ran.append, "x")
    assert sim.cancel(handle) is True
    assert sim.cancel(handle) is False
    sim.run()
    assert ran == []


def test_cancel_after_run_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.cancel(handle) is False


def test_run_until_stops_at_boundary():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.schedule(3.0, order.append, "c")
    sim.run_until(2.0)
    assert order == ["a", "b"]
    assert sim.now == 2.0
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_for_advances_relative():
    sim = Simulator(start_time=10.0)
    sim.schedule(5.0, lambda: None)
    sim.run_for(2.0)
    assert sim.now == 12.0
    assert sim.pending() == 1


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_run_backwards_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(h1)
    assert sim.peek_time() == 2.0


def test_pending_counts_uncancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    sim.cancel(h1)
    assert sim.pending() == 1


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_run_returns_event_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    assert sim.run() == 7
    assert sim.events_processed == 7


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_draining_in_exactly_max_events_is_not_a_runaway():
    """Satellite regression: running exactly ``max_events`` events and
    draining the queue used to raise SimulationError even though nothing
    was pending — the guard must only fire when events remain."""
    sim = Simulator()
    for i in range(100):
        sim.schedule(float(i), lambda: None)
    assert sim.run(max_events=100) == 100
    assert sim.pending() == 0

    sim = Simulator()
    for i in range(100):
        sim.schedule(float(i), lambda: None)
    assert sim.run_until(200.0, max_events=100) == 100


def test_run_until_max_events_still_guards_runaways():
    sim = Simulator()

    def rearm():
        sim.schedule(0.5, rearm)

    sim.schedule(0.5, rearm)
    with pytest.raises(SimulationError):
        sim.run_until(1000.0, max_events=100)


# ------------------------------------------------- wheel-specific behaviour


def test_order_preserved_across_wheel_levels():
    """Delays straddling every wheel level (sub-tick, level-0 page,
    level-1/2 pages, overflow heap) still run in global time order."""
    sim = Simulator()
    order = []
    delays = [0.0001, 0.1, 0.25, 0.26, 1.0, 63.9, 64.0, 5000.0, 20000.0, 7e5]
    for d in reversed(delays):
        sim.schedule(d, order.append, d)
    sim.run()
    assert order == delays


def test_same_slot_ties_and_subtick_ordering():
    """Events quantised into one wheel slot still sort by exact time, and
    exact-time ties by insertion order."""
    sim = Simulator()
    order = []
    sim.schedule(0.00050, order.append, "late")
    sim.schedule(0.00040, order.append, "mid-a")
    sim.schedule(0.00040, order.append, "mid-b")
    sim.schedule(0.00030, order.append, "early")
    sim.run()
    assert order == ["early", "mid-a", "mid-b", "late"]


def test_insert_behind_cursor_after_peek_still_runs_in_order():
    """peek_time() may advance the wheel cursor; a later insert at an
    earlier-quantising time must still run before later events."""
    sim = Simulator()
    order = []
    sim.schedule(100.0, order.append, "far")
    assert sim.peek_time() == 100.0
    sim.schedule(0.001, order.append, "near")
    sim.schedule(0.002, order.append, "near2")
    sim.run()
    assert order == ["near", "near2", "far"]


def test_compaction_keeps_survivors_and_counters_consistent():
    """Mass cancellation triggers compaction; bookkeeping and the
    surviving schedule must be unaffected."""
    sim = Simulator()
    ran = []
    keep = []
    for i in range(600):
        handle = sim.schedule(1.0 + i * 0.01, ran.append, i)
        if i % 10 == 0:
            keep.append((i, handle))
        else:
            sim.cancel(handle)
    assert sim.pending() == len(keep)
    assert sim.cancelled_pending() <= 256  # compaction reclaimed the rest
    sim.run()
    assert ran == [i for i, _ in keep]
    assert sim.pending() == 0
    assert sim.cancelled_pending() == 0


def test_cancel_releases_closure_immediately():
    class Big:
        pass

    sim = Simulator()
    big = Big()
    handle = sim.schedule(1000.0, lambda obj: None, big)
    sim.cancel(handle)
    assert handle.entry.fn is None
    assert handle.entry.args == ()


def test_profile_attributes_events_by_prefix():
    sim = Simulator()
    prof = SimProfile().attach(sim)
    sim.schedule(1.0, lambda: None, name="hb:svc-a")
    sim.schedule(1.0, lambda: None, name="hb:svc-b")
    sim.schedule(2.0, lambda: None, name="deliver:rpc-request")
    sim.schedule(3.0, lambda: None)
    sim.run()
    report = prof.report()
    assert report["total_events"] == 4
    assert report["subsystems"]["hb"]["events"] == 2
    assert report["subsystems"]["deliver"]["events"] == 1
    assert report["subsystems"]["(unnamed)"]["events"] == 1
    assert abs(sum(r["events_share"] for r in report["subsystems"].values()) - 1.0) < 1e-9
    prof.detach(sim)
    sim.schedule(1.0, lambda: None, name="hb:svc-a")
    sim.run()
    assert prof.total_events == 4  # detached: no further records


def test_tracer_sees_dispatch_order():
    sim = Simulator()
    seen = []
    sim.set_tracer(lambda time, name: seen.append((time, name)))
    sim.schedule(2.0, lambda: None, name="b")
    sim.schedule(1.0, lambda: None, name="a")
    sim.run()
    assert seen == [(1.0, "a"), (2.0, "b")]


# ----------------------------------------------------------------- timers


def test_timer_rearm_and_disarm():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x", name="t:one")
    timer.arm(1.0)
    assert timer.armed
    timer.arm(2.0)  # re-arm supersedes the first arm
    sim.run()
    assert fired == ["x"]
    assert sim.now == 2.0
    assert not timer.armed
    timer.arm(1.0)
    assert timer.disarm() is True
    assert timer.disarm() is False
    sim.run()
    assert fired == ["x"]


def test_periodic_timer_fires_every_period():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now), name="p:t")
    timer.start()
    sim.run_until(4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    timer.cancel()
    sim.run_until(10.0)
    assert len(fired) == 4
    assert sim.pending() == 0


def test_periodic_timer_poke_runs_now_and_rearms():
    sim = Simulator(start_time=5.0)
    fired = []
    timer = PeriodicTimer(sim, 2.0, lambda: fired.append(sim.now), name="p:t")
    timer.poke()
    assert fired == [5.0]
    sim.run_until(9.5)
    assert fired == [5.0, 7.0, 9.0]


def test_periodic_timer_reschedule_overrides_next_interval():
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) == 1:
            timer.reschedule(0.25)

    timer = PeriodicTimer(sim, 1.0, tick, name="p:t")
    timer.start()
    sim.run_until(3.5)
    assert fired == [1.0, 1.25, 2.25, 3.25]


def test_periodic_timer_reschedule_clamps_negative_delay():
    """Satellite regression: float accumulation can compute a fractionally
    negative wake-up delay; the chain must clamp to zero, not die with
    'cannot schedule in the past'."""
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) == 1:
            timer.reschedule(-1e-13)

    timer = PeriodicTimer(sim, 1.0, tick, name="p:t")
    timer.start()
    sim.run_until(2.5)
    assert fired == [1.0, 1.0, 2.0]


def test_periodic_timer_cancel_from_within_callback():
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) == 2:
            timer.cancel()

    timer = PeriodicTimer(sim, 1.0, tick, name="p:t")
    timer.start()
    sim.run()
    assert fired == [1.0, 2.0]
    assert sim.pending() == 0
