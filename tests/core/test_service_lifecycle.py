"""Service lifecycle: secret rolling, certificate lifetimes, sweeps
(sections 4.2, 5.5.1) and their interaction."""

import pytest

from repro.core import HostOS, OasisService
from repro.errors import FraudError, RevokedError
from repro.runtime.clock import ManualClock


def make_service(**kwargs):
    clock = ManualClock()
    svc = OasisService("S", clock=clock, **kwargs)
    svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
    client = HostOS("h").create_domain().client_id
    return clock, svc, client


def test_tick_rolls_secrets_on_period():
    clock, svc, client = make_service()
    index = svc.secrets.current_index
    clock.advance(svc.secrets.roll_period + 1)
    svc.tick()
    assert svc.secrets.current_index == index + 1


def test_certificates_survive_secret_roll():
    """Fig 4.1 + 5.5.1: older secrets stay valid for verification until
    their lifetime ends."""
    clock, svc, client = make_service()
    cert = svc.enter_role(client, "Anon", (1,))
    clock.advance(svc.secrets.roll_period + 1)
    svc.tick()
    svc.validate(cert)   # old secret still live


def test_certificate_dies_with_its_secret():
    """A certificate signed with an expired secret fails the signature
    recomputation — indistinguishable from forgery, which is why the
    paper pairs secret lifetimes with certificate timeouts."""
    clock, svc, client = make_service(secret_lifetime=100.0)
    cert = svc.enter_role(client, "Anon", (1,))
    svc.secrets.roll()
    clock.advance(101.0)
    svc._signature_cache.clear()
    with pytest.raises(FraudError):
        svc.validate(cert)


def test_cert_lifetime_and_secret_lifetime_paired():
    """With cert_lifetime <= secret_lifetime the expiry fires first and
    the failure is correctly classified as revocation, not fraud."""
    clock, svc2, client = None, None, None
    clock = ManualClock()
    svc = OasisService("S2", clock=clock, cert_lifetime=50.0, secret_lifetime=100.0)
    svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
    client = HostOS("h").create_domain().client_id
    cert = svc.enter_role(client, "Anon", (1,))
    clock.advance(60.0)
    with pytest.raises(RevokedError):
        svc.validate(cert)


def test_compromise_response_invalidate_all():
    """Section 5.5.1: on suspected compromise, drop every secret; all
    outstanding certificates become unverifiable at once."""
    clock, svc, client = make_service()
    certs = [svc.enter_role(client, "Anon", (i,)) for i in range(5)]
    svc.secrets.invalidate_all()
    svc._signature_cache.clear()
    for cert in certs:
        with pytest.raises(FraudError):
            svc.validate(cert)
    # new issues work immediately with the fresh secret
    fresh = svc.enter_role(client, "Anon", (9,))
    svc.validate(fresh)


def test_tick_sweeps_revoked_records():
    clock, svc, client = make_service()
    certs = [svc.enter_role(client, "Anon", (i,)) for i in range(20)]
    for cert in certs:
        svc.exit_role(cert)
    before = svc.credentials.live_count()
    svc.tick()
    assert svc.credentials.live_count() < before


def test_delegation_expiry_via_tick():
    clock, svc, client = make_service()
    svc.add_rolefile("extra", """
def Person(p)  p: string
def Helper(p)  p: string
Person(p) <-
Helper(p) <- Person(p) <|* Person
""")
    boss = HostOS("h2").create_domain().client_id
    boss_person = svc.enter_role(boss, "Person", ("boss",), rolefile_id="extra")
    delegation, _ = svc.delegate(
        boss_person, "Helper", expires_in=10.0, rolefile_id="extra"
    )
    helper = HostOS("h3").create_domain().client_id
    helper_person = svc.enter_role(helper, "Person", ("helper",), rolefile_id="extra")
    helper_cert = svc.enter_delegated_role(
        helper, delegation, credentials=(helper_person,), rolefile_id="extra"
    )
    clock.advance(11.0)
    expired = svc.tick()
    assert expired == 1
    with pytest.raises(RevokedError):
        svc.validate(helper_cert)
