"""Validation caches must never outlive the facts they summarise.

Section 4.2 allows "the integrity of the certificate" to be cached, but
the paper's whole point is *immediate* revocation: a cascade that turns
a credential record FALSE must be visible on the very next validate(),
and the cache layer must not reintroduce the soft-state staleness the
architecture was designed to remove.  Each test warms the caches first
so the failure would be a stale hit, not a cold-path error.
"""

import pytest

from repro.core import HostOS, OasisService
from repro.errors import FraudError, MisuseError, RevokedError
from repro.runtime.clock import ManualClock

ROLEFILE = "def Anon(n)  n: integer\nAnon(n) <- "


def make_service(**kwargs):
    clock = ManualClock()
    svc = OasisService("S", clock=clock, **kwargs)
    svc.add_rolefile("main", ROLEFILE)
    client = HostOS("h").create_domain().client_id
    return clock, svc, client


def warm(svc, cert):
    """Validate twice; the second call must come from the fast path."""
    svc.validate(cert)
    before = svc.stats.validity_cache_hits
    svc.validate(cert)
    assert svc.stats.validity_cache_hits == before + 1
    return svc.stats.validity_cache_hits


class TestCascadeInvalidation:
    def test_exit_role_fails_validation_on_next_call(self):
        clock, svc, client = make_service()
        cert = svc.enter_role(client, "Anon", (1,))
        warm(svc, cert)
        invalidations = svc.stats.validity_cache_invalidations
        svc.exit_role(cert)
        assert svc.stats.validity_cache_invalidations == invalidations + 1
        with pytest.raises(RevokedError):
            svc.validate(cert)

    def test_cascade_through_parent_record_invalidates_dependant(self):
        """Revoking an upstream record must flush the *downstream*
        certificate's cache entry via the cascade, not just the record
        that was revoked directly."""
        clock, svc, client = make_service()
        svc.add_rolefile("chain", """
def Login(u)   u: string
def Member(u)  u: string
Login(u)  <-
Member(u) <- Login(u)*
""")
        login = svc.enter_role(client, "Login", ("u1",), rolefile_id="chain")
        member = svc.enter_role(
            client, "Member", ("u1",), credentials=(login,), rolefile_id="chain"
        )
        warm(svc, member)
        svc.exit_role(login)
        with pytest.raises(RevokedError):
            svc.validate(member)


class TestSecretRoll:
    def test_secret_death_defeats_warm_caches(self):
        """Rolling past a secret's lifetime must fail validation even
        though both the signature and validity caches are warm — no
        manual cache clearing by the caller."""
        clock, svc, client = make_service(secret_lifetime=100.0)
        cert = svc.enter_role(client, "Anon", (1,))
        warm(svc, cert)
        svc.secrets.roll()
        clock.advance(101.0)
        with pytest.raises(FraudError):
            svc.validate(cert)

    def test_invalidate_all_defeats_warm_caches(self):
        clock, svc, client = make_service()
        cert = svc.enter_role(client, "Anon", (1,))
        warm(svc, cert)
        svc.secrets.invalidate_all()
        with pytest.raises(FraudError):
            svc.validate(cert)


class TestRolefileReload:
    def test_reload_clears_validation_caches(self):
        clock, svc, client = make_service()
        cert = svc.enter_role(client, "Anon", (1,))
        warm(svc, cert)
        assert len(svc._validity_cache) > 0
        svc.add_rolefile("main", ROLEFILE)
        assert len(svc._validity_cache) == 0
        assert len(svc._signature_cache) == 0

    def test_remove_rolefile_clears_validation_caches(self):
        clock, svc, client = make_service()
        cert = svc.enter_role(client, "Anon", (1,))
        warm(svc, cert)
        svc.remove_rolefile("main")
        assert len(svc._validity_cache) == 0
        with pytest.raises(MisuseError):
            svc.validate(cert)


class TestBounds:
    def test_validity_cache_is_lru_bounded(self):
        clock, svc, client = make_service(
            signature_cache_size=4, validity_cache_size=4
        )
        certs = [svc.enter_role(client, "Anon", (i,)) for i in range(10)]
        for cert in certs:
            svc.validate(cert)
        assert len(svc._validity_cache) <= 4
        assert len(svc._signature_cache) <= 4
        assert svc.stats.validity_cache_evictions >= 6
        assert svc.stats.signature_cache_evictions >= 6

    def test_evicted_entry_revalidates_correctly(self):
        """Eviction is a performance event, not a correctness one: a
        certificate whose cache entries were evicted still validates."""
        clock, svc, client = make_service(
            signature_cache_size=2, validity_cache_size=2
        )
        certs = [svc.enter_role(client, "Anon", (i,)) for i in range(5)]
        for cert in certs:
            svc.validate(cert)
        svc.validate(certs[0])   # long since evicted
        svc.exit_role(certs[0])
        with pytest.raises(RevokedError):
            svc.validate(certs[0])
