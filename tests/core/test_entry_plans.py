"""Compiled per-role entry plans (engine hot path).

A plan restricts evaluation to statements whose head is the requested
role or a transitive local condition of one.  These tests pin two
properties: the restriction never changes *what* is granted, and the
plan cache behaves (compiled once per role, invalidated on reload).
"""

import pytest

from repro.core import HostOS, OasisService
from repro.core.engine import CertDep, Membership, RoleEntryEngine
from repro.core.rdl.parser import parse_rolefile
from repro.core.rdl.typecheck import TypeChecker
from repro.errors import EntryDenied
from repro.runtime.clock import ManualClock


def make_engine(source, service="S", external=None):
    rolefile = parse_rolefile(source)
    checker = TypeChecker(
        rolefile,
        resolver=lambda svc, role: (external or {}).get((svc, role)),
    )
    checker.check()

    def signatures(svc, role):
        if svc is None or svc == service:
            try:
                return checker.signature(role)
            except Exception:
                return None
        return (external or {}).get((svc, role))

    return RoleEntryEngine(rolefile, service, signatures)


def membership(service, role, args, crr=1):
    return Membership(
        service=service, roles=frozenset({role}), args=args,
        deps=(CertDep(service, crr),),
    )


CHAIN = """
def Login(u)   u: string
def Member(u)  u: string
def Admin(u)   u: string
def Decoy(n)   n: integer
Member(u) <- Login(u)
Admin(u)  <- Member(u)
Decoy(n)  <-
"""


class TestPlanSemantics:
    def test_transitive_intermediates_are_candidates(self):
        engine = make_engine(CHAIN)
        result = engine.evaluate(
            "Admin", credentials=[membership("S", "Login", ("u1",))]
        )
        assert result.membership.roles == frozenset({"Admin"})
        # Member(u) <- Login(u) had to run as an intermediate
        assert {s.head.name for s in result.applied} == {"Member", "Admin"}

    def test_unreachable_statements_are_skipped(self):
        engine = make_engine(CHAIN)
        engine.evaluate("Admin", credentials=[membership("S", "Login", ("u1",))])
        # Decoy(n) <- is not in Admin's dependency closure
        assert engine.stats.statements_skipped == 1
        assert engine.stats.statements_considered == 2

    def test_plan_restriction_matches_full_scan_on_denial(self):
        engine = make_engine(CHAIN)
        with pytest.raises(EntryDenied):
            engine.evaluate("Admin", credentials=[membership("S", "Decoy", (1,))])

    def test_plan_compiled_once_then_hit(self):
        engine = make_engine(CHAIN)
        creds = lambda: [membership("S", "Login", ("u1",))]
        engine.evaluate("Admin", credentials=creds())
        engine.evaluate("Admin", credentials=creds())
        engine.evaluate("Admin", credentials=creds())
        assert engine.stats.plans_compiled == 1
        assert engine.stats.plan_hits == 2
        assert engine.stats.evaluations == 3

    def test_plans_are_per_role(self):
        engine = make_engine(CHAIN)
        engine.evaluate("Decoy", (7,))
        engine.evaluate("Admin", credentials=[membership("S", "Login", ("u1",))])
        assert engine.stats.plans_compiled == 2

    def test_invalidate_plans_recompiles(self):
        engine = make_engine(CHAIN)
        engine.evaluate("Decoy", (7,))
        engine.invalidate_plans()
        engine.evaluate("Decoy", (7,))
        assert engine.stats.plans_compiled == 2

    def test_foreign_service_condition_not_pulled_into_closure(self):
        """A condition on another service can only be satisfied by a
        supplied credential, so statements producing that role name
        locally must not be dragged in by name collision."""
        external = {("T", "Remote"): [type("X", (), {})]}
        engine = make_engine(
            """
def Entry(u)   u: string
def Remote(u)  u: string
Entry(u)  <- T.Remote(u)
Remote(u) <-
""",
            external={("T", "Remote"): None},
        )
        with pytest.raises(EntryDenied):
            engine.evaluate("Entry", ("u1",))
        # the local Remote(u) <- statement is NOT a candidate for Entry
        assert engine.stats.statements_skipped == 1


class TestElectionFallback:
    def test_delegation_requests_consider_all_statements(self):
        """Election-form entry runs against the full statement list: the
        delegation's required_roles may reference any local role."""
        clock = ManualClock()
        svc = OasisService("S", clock=clock)
        svc.add_rolefile("main", """
def Person(p)  p: string
def Helper(p)  p: string
Person(p) <-
Helper(p) <- Person(p) <|* Person
""")
        boss = HostOS("h1").create_domain().client_id
        boss_person = svc.enter_role(boss, "Person", ("boss",))
        delegation, _ = svc.delegate(boss_person, "Helper", expires_in=50.0)
        helper = HostOS("h2").create_domain().client_id
        helper_person = svc.enter_role(helper, "Person", ("helper",))
        engine = svc._rolefiles["main"].engine
        skipped_before = engine.stats.statements_skipped
        cert = svc.enter_delegated_role(
            helper, delegation, credentials=(helper_person,)
        )
        assert cert.names_role("Helper")
        # the election evaluation itself skipped nothing
        assert engine.stats.statements_skipped == skipped_before


class TestServiceReload:
    def test_rolefile_reload_builds_fresh_plans(self):
        clock = ManualClock()
        svc = OasisService("S", clock=clock)
        svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
        client = HostOS("h").create_domain().client_id
        svc.enter_role(client, "Anon", (1,))
        old_engine = svc._rolefiles["main"].engine
        assert old_engine.stats.plans_compiled == 1
        svc.add_rolefile(
            "main",
            "def Anon(n)  n: integer\ndef Extra(n)  n: integer\n"
            "Anon(n) <- \nExtra(n) <- ",
        )
        new_engine = svc._rolefiles["main"].engine
        assert new_engine is not old_engine
        assert new_engine.stats.plans_compiled == 0
        svc.enter_role(client, "Extra", (2,))
        assert new_engine.stats.plans_compiled == 1
