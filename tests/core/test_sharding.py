"""Sharding layer unit tests (ISSUE 7 tentpole).

Ring placement must be deterministic and minimal-movement; the router
must mask crashed shards and snap back; follower replicas must stay
coherent with their leader's cascades (fail-closed on the very next
call); the cross-shard settle must converge within the subscription
graph's hop bound.
"""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import LocalLinkage, SimLinkage
from repro.core.sharding import (
    CredentialFleet,
    CredentialShard,
    HashRing,
    ServiceReplica,
    ShardCoordinator,
    ShardRouter,
    StorageFleet,
    StorageShard,
    stable_digest,
)
from repro.core.types import ObjectType
from repro.errors import OasisError, RevokedError
from repro.mssa.acl import Acl
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.runtime.clock import ManualClock, SimClock
from repro.runtime.network import Network
from repro.runtime.rpc import RpcEndpoint
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""


# ------------------------------------------------------------------- ring


def test_stable_digest_is_process_independent():
    # pinned value: blake2b-8 of the key bytes.  If this ever moves,
    # every persisted placement in every deployment moves with it.
    assert stable_digest("shard-a#0") == int.from_bytes(
        __import__("hashlib").blake2b(b"shard-a#0", digest_size=8).digest(), "big"
    )
    assert stable_digest("x") == stable_digest("x")
    assert stable_digest("x") != stable_digest("y")


def test_ring_placement_is_insertion_order_independent():
    keys = [f"k{i}" for i in range(300)]
    forward = HashRing(["a", "b", "c", "d"])
    backward = HashRing(["d", "c", "b", "a"])
    assert {k: forward.node_for(k) for k in keys} == {
        k: backward.node_for(k) for k in keys
    }


def test_ring_spreads_keys_across_all_nodes():
    ring = HashRing(["a", "b", "c", "d"])
    owners = {ring.node_for(f"k{i}") for i in range(300)}
    assert owners == {"a", "b", "c", "d"}


def test_ring_removal_moves_only_the_removed_nodes_keys():
    keys = [f"k{i}" for i in range(300)]
    ring = HashRing(["a", "b", "c", "d"])
    before = {k: ring.node_for(k) for k in keys}
    ring.remove_node("b")
    for key in keys:
        if before[key] != "b":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) != "b"
    # adding it back restores the original placement exactly
    ring.add_node("b")
    assert {k: ring.node_for(k) for k in keys} == before


def test_ring_preference_walk_yields_each_node_once():
    ring = HashRing(["a", "b", "c"])
    walk = list(ring.preference("some-key"))
    assert sorted(walk) == ["a", "b", "c"]
    assert walk[0] == ring.node_for("some-key")
    assert ring.nodes_for("some-key", 2) == walk[:2]


def test_empty_ring_raises():
    with pytest.raises(OasisError):
        HashRing().node_for("k")


# ----------------------------------------------------------------- router


def test_router_masks_down_shards_and_snaps_back():
    router = ShardRouter(HashRing(["a", "b", "c"]))
    key = "some-key"
    owner = router.owner(key)
    version = router.version
    router.mark_down(owner)
    assert router.version > version
    detour = router.route(key)
    assert detour != owner
    assert detour in list(router.ring.preference(key))
    assert router.stats.reroutes == 1
    router.mark_up(owner)
    assert router.route(key) == owner


def test_router_raises_when_every_shard_is_down():
    router = ShardRouter(HashRing(["a", "b"]))
    router.mark_down("a")
    router.mark_down("b")
    with pytest.raises(OasisError):
        router.route("k")


# --------------------------------------------------------------- replicas


def build_shard(followers=2):
    clock = ManualClock()
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    login = OasisService(
        "Login", registry=registry, linkage=linkage, clock=clock
    )
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    shard = CredentialShard(login, followers=followers)
    host = HostOS("shard-host")
    return clock, login, shard, host


def test_replica_serves_warm_and_falls_back_cold():
    _, login, shard, host = build_shard(followers=1)
    domain = host.create_domain()
    cert = shard.enter_role(domain.client_id, "LoggedOn", ("u1", "h"))
    replica = shard.replicas[0]
    shard.validate(cert)                    # cold: leader fallback, warms
    assert replica.stats.leader_fallbacks == 1
    shard.validate(cert)                    # warm: replica-local
    assert replica.stats.warm_hits == 1
    counters = replica.cache_counters()["validity"]
    assert counters.hits >= 1 and counters.size == 1


def test_revocation_at_leader_invalidates_replica_immediately():
    _, login, shard, host = build_shard(followers=1)
    domain = host.create_domain()
    cert = shard.enter_role(domain.client_id, "LoggedOn", ("u1", "h"))
    shard.validate(cert)
    shard.validate(cert)                    # warm on the replica
    shard.exit_role(cert)
    # the leader's cascade ran the replica's watch hook synchronously:
    # the very next replica read must deny
    with pytest.raises(RevokedError):
        shard.validate(cert)
    assert shard.replicas[0].stats.invalidations >= 1


def test_replica_warm_hit_rechecks_expiry(monkeypatch):
    clock, login, shard, host = build_shard(followers=1)
    login.cert_lifetime = 10.0
    domain = host.create_domain()
    cert = shard.enter_role(domain.client_id, "LoggedOn", ("u1", "h"))
    shard.validate(cert)
    shard.validate(cert)
    clock.advance(11.0)
    with pytest.raises(OasisError):
        shard.replicas[0].validate(cert)


def test_leader_restart_clears_replica_caches():
    _, login, shard, host = build_shard(followers=1)
    domain = host.create_domain()
    cert = shard.enter_role(domain.client_id, "LoggedOn", ("u1", "h"))
    shard.validate(cert)
    shard.validate(cert)
    assert shard.replicas[0].cache_counters()["validity"].size == 1
    login.restart()
    assert shard.replicas[0].cache_counters()["validity"].size == 0


def test_foreign_issuer_certificates_fall_back_to_leader_path():
    _, login, shard, host = build_shard(followers=1)
    clock2 = ManualClock()
    registry2 = ServiceRegistry()
    other = OasisService(
        "Other", registry=registry2, linkage=LocalLinkage(), clock=clock2
    )
    other.export_type(ObjectType("Other.userid"), "userid")
    other.add_rolefile("main", LOGIN_RDL)
    domain = host.create_domain()
    foreign = other.enter_role(domain.client_id, "LoggedOn", ("u1", "h"))
    with pytest.raises(OasisError):
        shard.replicas[0].validate(foreign)


# ----------------------------------------------------------------- fleets


def build_fleet(n_shards=2, followers=1):
    clock = ManualClock()
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    shards = []
    for index in range(n_shards):
        svc = OasisService(
            f"Login{index}", registry=registry, linkage=linkage, clock=clock
        )
        svc.export_type(ObjectType(f"Login{index}.userid"), "userid")
        svc.add_rolefile("main", LOGIN_RDL)
        shards.append(CredentialShard(svc, followers=followers))
    return CredentialFleet(shards), HostOS("fleet-host")


def test_fleet_routes_validation_by_issuer():
    fleet, host = build_fleet(n_shards=3)
    certs = []
    for index in range(30):
        domain = host.create_domain()
        certs.append(
            fleet.enter_role(f"user{index}", domain.client_id, "LoggedOn", (f"u{index}", "h"))
        )
    issuers = {cert.issuer for cert in certs}
    assert len(issuers) > 1, "placement never spread across shards"
    for cert in certs:
        assert fleet.validate(cert) is cert
        assert fleet.shard_of(cert).name == cert.issuer


def test_fleet_rejects_certificates_from_outside_the_fleet():
    fleet, host = build_fleet(n_shards=2)
    elsewhere = OasisService(
        "Elsewhere",
        registry=ServiceRegistry(),
        linkage=LocalLinkage(),
        clock=ManualClock(),
    )
    elsewhere.export_type(ObjectType("Elsewhere.userid"), "userid")
    elsewhere.add_rolefile("main", LOGIN_RDL)
    domain = host.create_domain()
    foreign = elsewhere.enter_role(domain.client_id, "LoggedOn", ("u", "h"))
    with pytest.raises(OasisError):
        fleet.shard_of(foreign)


def test_fleet_mark_down_moves_new_placements_only():
    fleet, host = build_fleet(n_shards=3)
    key = "sticky-user"
    home = fleet.router.route(key)
    fleet.mark_down(home)
    assert fleet.router.route(key) != home
    fleet.mark_up(home)
    assert fleet.router.route(key) == home


# ---------------------------------------------------------------- storage


def build_storage_world(followers=1):
    clock = ManualClock()
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    custode = ByteSegmentCustode(
        "ffc",
        registry=registry,
        linkage=linkage,
        clock=clock,
        user_groups=lambda user: {"staff"},
    )
    fleet = StorageFleet([StorageShard(custode, followers=followers)])
    host = HostOS("storage-host")
    domain = host.create_domain()
    login_cert = login.enter_role(domain.client_id, "LoggedOn", ("admin", "h"))
    acl = custode.create_acl(Acl.parse("@staff=+r admin=+rwad", alphabet="rwad"))
    fid = custode.create_segment(acl, b"replicated payload")
    cert = custode.enter_use_acl(domain.client_id, acl, login_cert)
    return login, custode, fleet, fid, cert


def test_storage_replica_serves_warm_reads():
    login, custode, fleet, fid, cert = build_storage_world()
    replica = fleet.shards["ffc"].replicas[0]
    assert fleet.read_segment(cert, fid) == b"replicated payload"
    assert fleet.read_segment(cert, fid, offset=11) == b"payload"
    assert replica.stats.warm_hits >= 1
    assert replica.cache_counters()["decisions"].size == 1


def test_storage_replica_denies_after_use_cert_revoked():
    login, custode, fleet, fid, cert = build_storage_world()
    fleet.read_segment(cert, fid)
    fleet.read_segment(cert, fid)           # warm
    custode.service.exit_role(cert)
    with pytest.raises(OasisError):
        fleet.read_segment(cert, fid)


def test_storage_replica_repins_after_acl_change():
    login, custode, fleet, fid, cert = build_storage_world()
    fleet.read_segment(cert, fid)
    fleet.read_segment(cert, fid)           # warm, pinned to ACL version
    replica = fleet.shards["ffc"].replicas[0]
    warm_before = replica.stats.warm_hits
    acl_id = custode._record(fid).acl_id
    custode.modify_acl(cert, acl_id, Acl.parse("admin=+rwad", alphabet="rwad"))
    # the version record moved: outstanding UseAcl certificates are
    # revoked and the replica's pin is stale — the warm path must not
    # serve this read
    with pytest.raises(OasisError):
        fleet.read_segment(cert, fid)
    assert replica.stats.warm_hits == warm_before


# ----------------------------------------------------------------- settle


def build_chain(depth=2):
    sim = Simulator()
    net = Network(sim, seed=5, default_delay=0.01)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    leaders = []
    for index in range(depth + 1):
        svc = OasisService(
            f"Login{index}", registry=registry, linkage=linkage, clock=clock
        )
        svc.export_type(ObjectType(f"Login{index}.userid"), "userid")
        leaders.append(svc)
    leaders[0].add_rolefile("main", LOGIN_RDL)
    for level in range(1, depth + 1):
        parent_role = "LoggedOn" if level == 1 else f"Member{level - 1}"
        parent_args = "(u, h)" if level == 1 else "(u)"
        leaders[level].add_rolefile(
            "main",
            f"import Login0.userid\n"
            f"Member{level}(u) <- Login{level - 1}.{parent_role}{parent_args}*",
        )
        linkage.monitor(leaders[level - 1], leaders[level], period=0.5, grace=2.0)
    sim.run_until(2.0)
    return sim, net, linkage, leaders


def test_settle_converges_within_chain_hop_bound():
    depth = 2
    sim, net, linkage, leaders = build_chain(depth)
    host = HostOS("settle-host")
    chains = []
    for index in range(12):
        domain = host.create_domain()
        cert = leaders[0].enter_role(domain.client_id, "LoggedOn", (f"u{index}", "h"))
        base = cert
        for level in range(1, depth + 1):
            cert = leaders[level].enter_role(
                domain.client_id, f"Member{level}", credentials=(cert,)
            )
        chains.append((base, cert))
    sim.run_until(sim.now + 3.0)

    coordinator = ShardCoordinator(net, linkage, leaders)
    for base, _leaf in chains:
        leaders[0].exit_role(base)
    stats = coordinator.settle(max_hops=depth + 3)
    assert stats.hops <= depth + 2
    assert stats.per_hop[-1] == 0
    assert stats.records_changed >= len(chains) * depth
    for _base, leaf in chains:
        with pytest.raises(OasisError):
            leaders[depth].validate(leaf)


def test_settle_on_quiet_fleet_is_one_hop():
    sim, net, linkage, leaders = build_chain(depth=1)
    coordinator = ShardCoordinator(net, linkage, leaders)
    stats = coordinator.settle()
    assert stats.hops == 1
    assert stats.records_changed == 0


def test_rpc_broadcast_collects_per_destination_futures():
    sim = Simulator()
    net = Network(sim, seed=3, default_delay=0.01)
    servers = []
    for index in range(3):
        server = RpcEndpoint(net, f"server{index}")
        server.register("whoami", lambda index=index: index)
        servers.append(server)
    client = RpcEndpoint(net, "client")
    futures = client.broadcast([f"server{i}" for i in range(3)], "whoami")
    sim.run()
    assert {dest: f.result() for dest, f in futures.items()} == {
        "server0": 0, "server1": 1, "server2": 2
    }
