"""Direct tests for the audit log (section 4.13)."""

from repro.core.audit import AuditKind, AuditLog


def test_record_and_query_by_kind():
    log = AuditLog()
    log.record(1.0, AuditKind.ROLE_ENTERED, "c1", "entered Member", ("Member",))
    log.record(2.0, AuditKind.FAIL_FRAUD, "c2", "forged")
    assert len(log.entries(AuditKind.ROLE_ENTERED)) == 1
    assert len(log.entries()) == 2


def test_failures_collects_all_three_classes():
    log = AuditLog()
    log.record(1.0, AuditKind.FAIL_FRAUD, "c", "x")
    log.record(2.0, AuditKind.FAIL_MISUSE, "c", "x")
    log.record(3.0, AuditKind.FAIL_REVOKED, "c", "x")
    log.record(4.0, AuditKind.VALIDATION_OK, "c", "x")
    assert len(log.failures()) == 3


def test_capacity_drops_and_counts():
    log = AuditLog(capacity=2)
    for i in range(5):
        log.record(float(i), AuditKind.VALIDATION_OK, "c", "x")
    assert len(log) == 2
    assert log.dropped == 3


def test_current_members_replay():
    log = AuditLog()
    log.record(1.0, AuditKind.ROLE_ENTERED, "c1", "", ("Member", "dm"))
    log.record(2.0, AuditKind.ROLE_ENTERED, "c2", "", ("Member", "jmb"))
    log.record(3.0, AuditKind.ROLE_EXITED, "c1", "", ("Member", "dm"))
    holders = log.current_members()
    assert holders == {("Member", ("jmb",)): ["c2"]}


def test_role_revoked_removes_holder():
    log = AuditLog()
    log.record(1.0, AuditKind.ROLE_ENTERED, "c1", "", ("Member", "dm"))
    log.record(2.0, AuditKind.ROLE_REVOKED, "c1", "", ("Member", "dm"))
    assert log.current_members() == {}


def test_fraud_by_client_tally():
    log = AuditLog()
    for _ in range(2):
        log.record(1.0, AuditKind.FAIL_FRAUD, "mallory", "forged")
    log.record(1.0, AuditKind.FAIL_FRAUD, "eve", "stolen")
    assert log.fraud_by_client() == {"mallory": 2, "eve": 1}
