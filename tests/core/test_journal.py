"""Event-sourced durability: WAL ordering, the transactional outbox,
dead-letter redelivery, tail-sync recovery, and replay idempotence.

The scenarios attack the exact window the journal exists to close: a
crash between "apply" (the credential mutation lands) and "notify" (the
cascade notification reaches the subscriber).  Without the outbox that
window silently loses revocations (see
``test_crash_discards_queued_wire_traffic`` in test_crash_restart.py);
with it, every notification is exactly-once-applied or parked in the
DLQ — checked by ``DurableStore.conservation_breaches``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.audit import AuditKind, AuditLog
from repro.core.credentials import CredentialRecordTable, RecordState
from repro.core.journal import DEAD, DELIVERED, PENDING, ServiceJournal
from repro.core.linkage import SimLinkage
from repro.core.service import PrincipalAdmission
from repro.core.sharding import ShardCoordinator
from repro.core.types import ObjectType
from repro.errors import OverloadError
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""


def make_world(delay=0.05, journaled=True):
    sim = Simulator()
    net = Network(sim, seed=13, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    if journaled:
        linkage.enable_journal(login)
        linkage.enable_journal(files)
    return sim, net, linkage, login, files


def populate(login, files, count):
    host = HostOS("journal-host")
    pairs = []
    for i in range(count):
        domain = host.create_domain()
        cert = login.enter_role(domain.client_id, "LoggedOn", (f"u{i}", "host"))
        reader = files.enter_role(domain.client_id, "Reader", credentials=(cert,))
        pairs.append((cert, reader))
    return pairs


def surrogate_states(files):
    return {
        record.external_ref: record.state
        for record in files.credentials.externals_of("Login")
    }


# ------------------------------------------------------------- WAL discipline


def test_wal_fires_before_the_mutation_applies():
    table = CredentialRecordTable("T")
    record = table.create_source(state=RecordState.TRUE)
    seen = []
    table.wal = lambda kind, data: seen.append(
        (kind, data, table.state_of(record.ref))
    )
    table.set_states([(record.ref, RecordState.FALSE)])
    kind, data, state_at_wal = seen[0]
    assert kind == "state"
    assert data["updates"] == [[record.ref, RecordState.FALSE.value]]
    # write-AHEAD: when the journal saw the event, the record had not
    # yet changed
    assert state_at_wal is RecordState.TRUE
    assert table.state_of(record.ref) is RecordState.FALSE


def test_wal_records_only_effective_changes():
    table = CredentialRecordTable("T")
    live = table.create_source(state=RecordState.TRUE)
    dead = table.create_source(state=RecordState.FALSE, permanent=True)
    seen = []
    table.wal = lambda kind, data: seen.append((kind, data))
    table.set_states([(live.ref, RecordState.TRUE)])       # no-op: same state
    table.set_states([(dead.ref, RecordState.TRUE)])       # no-op: permanent
    table.revoke_many([dead.ref])                          # no-op: permanent
    assert seen == []
    table.revoke_many([live.ref])
    assert seen == [("revoke", {"refs": [live.ref]})]


def test_revocation_travels_through_the_outbox():
    sim, net, linkage, login, files = make_world()
    (cert, reader), = populate(login, files, 1)
    sim.run_until(2.0)
    assert surrogate_states(files)[cert.crr] is RecordState.TRUE
    login.exit_role(cert)
    sim.run_until(4.0)
    assert surrogate_states(files)[cert.crr] is RecordState.FALSE
    store = linkage.durable
    entries = [
        e for e in store.journal("Login").outbox.values() if e.dest == "Files"
    ]
    assert entries and all(e.status == DELIVERED for e in entries)
    assert store.journal("Files").stats.applied >= 1
    assert store.conservation_breaches() == []


# ----------------------------------------------------- the apply/notify window


def test_crash_mid_append_cannot_lose_the_revocation():
    """The tentpole scenario: the process dies right after the journal
    transaction commits (state + outbox durable) and before the drain
    runs.  The legacy wire path loses this notification forever; the
    outbox redrains it on recovery."""
    sim, net, linkage, login, files = make_world()
    (cert, reader), = populate(login, files, 1)
    sim.run_until(2.0)

    relay = linkage.relay_of("Login")
    relay.arm_crash(
        "mid-append",
        lambda: sim.schedule(0.0, linkage.crash, login, name="test-crash"),
    )
    login.exit_role(cert)  # applied locally; the crash outruns the drain
    sim.run_until(5.0)
    # the crash window: state changed, notification never left
    assert login.credentials.state_of(cert.crr) is RecordState.FALSE
    assert surrogate_states(files)[cert.crr] is RecordState.TRUE
    pending = [
        e for e in linkage.durable.journal("Login").outbox.values()
        if e.status == PENDING
    ]
    assert pending, "the undrained notification must survive in the outbox"

    linkage.restart(login)
    sim.run_until(10.0)
    assert surrogate_states(files)[cert.crr] is RecordState.FALSE
    assert linkage.durable.conservation_breaches() == []
    assert linkage.durable.journal("Login").stats.replays == 1


def test_crash_mid_drain_delivers_exactly_once():
    """Die after the batch is marked in flight: the delivery may or may
    not have departed.  Receiver-side (issuer, seq) dedup makes the
    post-recovery redrain idempotent — applied exactly once either way."""
    sim, net, linkage, login, files = make_world()
    (cert, reader), = populate(login, files, 1)
    sim.run_until(2.0)
    files_applied_before = linkage.durable.journal("Files").stats.applied

    relay = linkage.relay_of("Login")
    relay.arm_crash(
        "mid-drain",
        lambda: sim.schedule(0.0, linkage.crash, login, name="test-crash"),
    )
    login.exit_role(cert)
    sim.run_until(5.0)
    linkage.restart(login)
    sim.run_until(15.0)

    assert surrogate_states(files)[cert.crr] is RecordState.FALSE
    files_journal = linkage.durable.journal("Files")
    login_journal = linkage.durable.journal("Login")
    # every delivered entry applied exactly once, duplicates dropped
    for entry in login_journal.outbox.values():
        if entry.status == DELIVERED and entry.dest == "Files":
            assert files_journal.applied_counts[("Login", entry.seq)] == 1
    assert files_journal.stats.applied - files_applied_before >= 1
    assert linkage.durable.conservation_breaches() == []


def test_undeliverable_notifications_park_in_dlq_and_redeliver():
    sim, net, linkage, login, files = make_world()
    (cert, reader), = populate(login, files, 1)
    sim.run_until(2.0)

    linkage.crash(files)
    login.exit_role(cert)  # the dest is down; the RPC retry budget fails
    sim.run_until(20.0)
    login_journal = linkage.durable.journal("Login")
    assert login_journal.stats.parked >= 1
    parked = [
        e for e in login_journal.outbox.values()
        if e.dest == "Files" and e.status != DELIVERED
    ]
    assert parked and all(
        e.redeliveries >= 1 and e.next_attempt_at > 0 for e in parked
    )
    # parked is not lost: the conservation sweep is clean with entries
    # sitting in the DLQ
    assert linkage.durable.conservation_breaches() == []

    linkage.restart(files)
    sim.run_until(60.0)  # past the seeded backoff
    assert not login_journal.dead_letters()
    assert login_journal.stats.outbox_redelivered >= 1
    assert surrogate_states(files)[cert.crr] is RecordState.FALSE
    assert linkage.durable.conservation_breaches() == []


def test_subscriber_recovers_by_tail_sync_not_resubscribe_storm():
    sim, net, linkage, login, files = make_world()
    pairs = populate(login, files, 20)
    sim.run_until(2.0)

    linkage.crash(files)
    for cert, _reader in pairs[:7]:
        login.exit_role(cert)  # revoked while the subscriber is down
    sim.run_until(10.0)
    subscribes_before = net.stats.subscribes_batched
    linkage.restart(files)
    sim.run_until(40.0)

    files_journal = linkage.durable.journal("Files")
    assert files_journal.stats.tail_syncs_pulled >= 1
    assert linkage.durable.journal("Login").stats.tail_syncs_served >= 1
    # the journaled path does not resubscribe per ref
    assert net.stats.subscribes_batched == subscribes_before
    states = surrogate_states(files)
    for index, (cert, _reader) in enumerate(pairs):
        expected = RecordState.FALSE if index < 7 else RecordState.TRUE
        assert states[cert.crr] is expected
    assert linkage.durable.conservation_breaches() == []


# ------------------------------------------------------------------ replay


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 5), st.sampled_from(["true", "false", "revoke"])),
        min_size=1,
        max_size=30,
    )
)
def test_journal_replay_is_idempotent(ops):
    """Replay twice == replay once: re-driving the log against the live
    table changes nothing (permanent records absorb revocations,
    same-state updates plan as empty) and journals nothing new."""
    journal = ServiceJournal("T")
    table = CredentialRecordTable("T")
    table.wal = lambda kind, data: journal.append(kind, data)
    refs = [table.create_source(state=RecordState.TRUE).ref for _ in range(6)]
    for index, op in ops:
        if op == "revoke":
            table.revoke_many([refs[index]])
        else:
            state = RecordState.TRUE if op == "true" else RecordState.FALSE
            table.set_states([(refs[index], state)])

    def apply(record):
        if record.kind == "state":
            table.set_states(
                [(ref, RecordState(value)) for ref, value in record.data["updates"]],
                permanent=record.data.get("permanent", False),
            )
        elif record.kind == "revoke":
            table.revoke_many(record.data["refs"])

    def snapshot():
        return [(table.state_of(ref), table.get(ref).permanent) for ref in refs]

    before = snapshot()
    length = len(journal)
    count_once = journal.replay(apply)
    assert snapshot() == before
    assert len(journal) == length  # replay must not re-journal
    count_twice = journal.replay(apply)
    assert count_twice == count_once
    assert snapshot() == before
    assert len(journal) == length


# ----------------------------------------------------------- audit via journal


def test_audit_rings_hot_window_and_spills_to_journal():
    journal = ServiceJournal("T")
    log = AuditLog(hot_window=4)
    log.attach_journal(journal)
    for i in range(10):
        log.record(float(i), AuditKind.VALIDATION_OK, f"c{i}", "ok")
    assert len(log.recent()) == 4                       # bounded in memory
    assert [e.client for e in log.recent()] == ["c6", "c7", "c8", "c9"]
    assert log.spilled == 6
    assert len(log) == 10                               # nothing lost
    assert len(log.entries(AuditKind.VALIDATION_OK)) == 10
    assert log.dropped == 0


def test_audit_standalone_capacity_still_drops_newest():
    # the pre-journal contract, unchanged: over capacity, new entries drop
    log = AuditLog(capacity=2)
    for i in range(5):
        log.record(float(i), AuditKind.VALIDATION_OK, f"c{i}", "ok")
    assert len(log) == 2
    assert log.dropped == 3


def test_role_history_cdc_tracks_tenures():
    journal = ServiceJournal("T")
    log = AuditLog(hot_window=8)
    log.attach_journal(journal)
    log.record(1.0, AuditKind.ROLE_ENTERED, "alice", "", ("Reader", "x"))
    log.record(2.0, AuditKind.ROLE_ENTERED, "bob", "", ("Reader", "x"))
    log.record(3.0, AuditKind.ROLE_EXITED, "alice", "", ("Reader", "x"))
    log.record(4.0, AuditKind.ROLE_REVOKED, "bob", "", ("Reader", "x"))
    log.record(5.0, AuditKind.ROLE_ENTERED, "alice", "", ("Writer", "y"))
    history = log.role_history()
    assert [(t.client, t.entered_at, t.ended_at) for t in history] == [
        ("alice", 1.0, 3.0),
        ("bob", 2.0, 4.0),
        ("alice", 5.0, None),
    ]
    assert history[1].end_kind is AuditKind.ROLE_REVOKED
    assert history[2].open
    assert log.holders_at(2.5) == {("Reader", ("x",)): ["alice", "bob"]}
    assert log.holders_at(6.0) == {("Writer", ("y",)): ["alice"]}
    assert log.current_members() == {("Writer", ("y",)): ["alice"]}


# ------------------------------------------------------- batched resubscribe


def test_restart_resubscribes_in_one_batch_not_a_storm():
    count = 150
    sim, net, linkage, login, files = make_world(journaled=False)
    pairs = populate(login, files, count)
    sim.run_until(5.0)
    assert net.stats.subscribes_batched == 0

    linkage.crash(files)
    sim.run_until(10.0)
    sent_before = net.stats.messages_sent
    linkage.restart(files)
    sim.run_until(30.0)

    # all 150 refs resubscribed through subscribe-many items
    assert net.stats.subscribes_batched == count
    link = net.link_stats("oasis:Files", "oasis:Login")
    assert link.subscribes_batched == count
    recovery_messages = net.stats.messages_sent - sent_before
    # one request envelope + batched replies, nowhere near one per ref
    assert recovery_messages < count / 2
    states = surrogate_states(files)
    assert all(state is RecordState.TRUE for state in states.values())


# ------------------------------------------------------ per-principal budget


def test_principal_admission_budget_sheds_noisy_tenant():
    admission = PrincipalAdmission(budget=2, window=1.0)
    registry = ServiceRegistry()
    login = OasisService("Login", registry=registry, admission=admission)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    host = HostOS("adm-host")
    noisy = host.create_domain().client_id
    quiet = host.create_domain().client_id

    login.enter_role(noisy, "LoggedOn", ("n0", "h"))
    login.enter_role(noisy, "LoggedOn", ("n1", "h"))
    with pytest.raises(OverloadError):
        login.enter_role(noisy, "LoggedOn", ("n2", "h"))
    # the budget is per principal: the quiet tenant is unaffected
    login.enter_role(quiet, "LoggedOn", ("q0", "h"))
    assert login.stats.entries_shed == 1
    assert login.stats.sheds_by_principal == {str(noisy): 1}


def test_principal_admission_window_slides():
    admission = PrincipalAdmission(budget=2, window=1.0)
    assert admission.admit("p", now=0.0)
    assert admission.admit("p", now=0.1)
    assert not admission.admit("p", now=0.2)
    # the old admissions age out of the window
    assert admission.admit("p", now=1.5)


# ----------------------------------------------------- settle integration


def test_settle_reports_journal_heads():
    sim, net, linkage, login, files = make_world()
    pairs = populate(login, files, 10)
    sim.run_until(2.0)
    coordinator = ShardCoordinator(net, linkage, [login, files])
    for cert, _reader in pairs[:4]:
        login.exit_role(cert)
    stats = coordinator.settle(max_hops=8, hop_window=0.5)
    assert stats.journal_heads.keys() == {"Login", "Files"}
    assert stats.journal_heads["Login"] == linkage.durable.journal("Login").head()
    assert all(head > 0 for head in stats.journal_heads.values())
    states = surrogate_states(files)
    for index, (cert, _reader) in enumerate(pairs):
        expected = RecordState.FALSE if index < 4 else RecordState.TRUE
        assert states[cert.crr] is expected
    assert linkage.durable.conservation_breaches() == []
    assert DEAD not in {
        e.status for e in linkage.durable.journal("Login").outbox.values()
    }
