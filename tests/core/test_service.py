"""Integration tests for OasisService: the chapter 3-4 scenarios."""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.audit import AuditKind
from repro.core.certificates import RoleTemplate
from repro.core.credentials import RecordState
from repro.core.linkage import LocalLinkage
from repro.errors import (
    DelegationError,
    EntryDenied,
    FraudError,
    MisuseError,
    RevokedError,
)
from repro.runtime.clock import ManualClock


class TestBasicEntry:
    def test_enter_role_issues_certificate(self, world):
        assert world.jmb_login.names_role("LoggedOn")
        assert world.jmb_login.args[1] == "ely"
        assert world.jmb_login.issuer == "Login"

    def test_chair_entry_with_foreign_credential(self, world):
        cert = world.conf.enter_role(
            world.jmb.client_id, "Chair", credentials=(world.jmb_login,)
        )
        assert cert.names_role("Chair")
        world.conf.validate(cert, claimed_client=world.jmb.client_id)

    def test_wrong_user_denied_chair(self, world):
        with pytest.raises(EntryDenied):
            world.conf.enter_role(
                world.dm.client_id, "Chair", credentials=(world.dm_login,)
            )

    def test_entry_without_credentials_denied(self, world):
        with pytest.raises(EntryDenied):
            world.conf.enter_role(world.dm.client_id, "Chair")

    def test_one_record_created_per_entry(self, world):
        """Section 4.7: one new credential record per role entry."""
        before = world.conf.credentials.records_created
        world.conf.enter_role(
            world.jmb.client_id, "Chair", credentials=(world.jmb_login,)
        )
        created = world.conf.credentials.records_created - before
        # one conjunction record plus one external surrogate for the
        # Login-issued credential
        assert created <= 2


class TestValidation:
    def test_wrong_client_is_fraud(self, world):
        with pytest.raises(FraudError):
            world.login.validate(world.jmb_login, claimed_client=world.dm.client_id)

    def test_tampered_args_is_fraud(self, world):
        import dataclasses
        forged = dataclasses.replace(world.jmb_login, args=("root", "ely"))
        with pytest.raises(FraudError):
            world.login.validate(forged)

    def test_wrong_service_is_misuse(self, world):
        with pytest.raises(MisuseError):
            world.conf.validate(world.jmb_login)

    def test_insufficient_role_is_misuse(self, world):
        with pytest.raises(MisuseError):
            world.login.validate(world.jmb_login, required_role="Admin")

    def test_signature_cache_hit_on_revalidation(self, world):
        world.login.validate(world.jmb_login)
        before = world.login.stats.signature_cache_hits
        world.login.validate(world.jmb_login)
        assert world.login.stats.signature_cache_hits == before + 1

    def test_expired_certificate_revoked(self):
        clock = ManualClock()
        svc = OasisService("S", clock=clock, cert_lifetime=10.0)
        svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
        host = HostOS("h")
        cert = svc.enter_role(host.create_domain().client_id, "Anon", (1,))
        svc.validate(cert)
        clock.advance(11.0)
        with pytest.raises(RevokedError):
            svc.validate(cert)

    def test_failure_classes_audited_separately(self, world):
        """Section 4.2: fraud and misuse are distinguished from revocation."""
        try:
            world.login.validate(world.jmb_login, claimed_client=world.dm.client_id)
        except FraudError:
            pass
        try:
            world.conf.validate(world.jmb_login)
        except MisuseError:
            pass
        assert len(world.login.audit.entries(AuditKind.FAIL_FRAUD)) == 1
        assert len(world.conf.audit.entries(AuditKind.FAIL_MISUSE)) == 1


class TestDelegation:
    def chair(self, world):
        return world.conf.enter_role(
            world.jmb.client_id, "Chair", credentials=(world.jmb_login,)
        )

    def test_delegation_and_entry(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        assert member.names_role("Member")
        assert member.args == (world.uid("dm"),)

    def test_non_elector_cannot_delegate(self, world):
        # dm holds no Conf role at all; craft via LoggedOn-only entry fails
        with pytest.raises(EntryDenied):
            world.conf.enter_role(
                world.dm.client_id, "Member", credentials=(world.dm_login,)
            )

    def test_delegate_requires_election_statement(self, world):
        chair = self.chair(world)
        with pytest.raises(DelegationError):
            world.conf.delegate(chair, "Chair")

    def test_revocation_certificate_revokes(self, world):
        chair = self.chair(world)
        deleg, revoc = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.conf.revoke(revoc)
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_revoked_delegation_cannot_be_accepted(self, world):
        chair = self.chair(world)
        deleg, revoc = world.conf.delegate(chair, "Member")
        world.conf.revoke(revoc)
        with pytest.raises(RevokedError):
            world.conf.enter_delegated_role(
                world.dm.client_id, deleg, credentials=(world.dm_login,)
            )

    def test_group_change_revokes_membership(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.groups.remove_member("staff", world.uid("dm"))
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_non_staff_candidate_denied(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        world.groups.remove_member("staff", world.uid("dm"))
        with pytest.raises(EntryDenied):
            world.conf.enter_delegated_role(
                world.dm.client_id, deleg, credentials=(world.dm_login,)
            )

    def test_logout_cascades_across_services(self, world):
        """Fig 4.8: revocation in the Login service propagates to the
        conference via external records and event notification."""
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.login.exit_role(world.dm_login)
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_delegation_time_limit(self, world):
        """Section 4.4: a time limit guards against lost revocation
        certificates."""
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member", expires_in=100.0)
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.clock.advance(101.0)
        world.conf.tick()
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_expired_delegation_cert_rejected_at_entry(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member", expires_in=10.0)
        world.clock.advance(11.0)
        with pytest.raises(RevokedError):
            world.conf.enter_delegated_role(
                world.dm.client_id, deleg, credentials=(world.dm_login,)
            )

    def test_revoke_on_exit(self, world):
        """Section 4.4: revocation when the delegator exits their role."""
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member", revoke_on_exit=True)
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.conf.exit_role(chair)
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_without_revoke_on_exit_membership_survives(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.conf.exit_role(chair)
        # the <|* star makes the *delegation* a membership rule, but the
        # delegation itself was not tied to the chair's session
        world.conf.validate(member)

    def test_required_roles_enforced(self, world):
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(
            chair,
            "Member",
            required_roles=(RoleTemplate("Login", "LoggedOn", (world.uid("other"), None)),),
        )
        with pytest.raises(EntryDenied):
            world.conf.enter_delegated_role(
                world.dm.client_id, deleg, credentials=(world.dm_login,)
            )

    def test_revoker_must_still_hold_role(self, world):
        chair = self.chair(world)
        deleg, revoc = world.conf.delegate(chair, "Member")
        world.conf.exit_role(chair)
        with pytest.raises(RevokedError):
            world.conf.revoke(revoc)

    def test_reissue_revocation_to_other_elector(self, world):
        chair = self.chair(world)
        deleg, revoc = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        # a second chair session takes over the revocation right
        chair2 = world.conf.enter_role(
            world.jmb.client_id, "Chair", credentials=(world.jmb_login,)
        )
        revoc2 = world.conf.reissue_revocation(revoc, chair2)
        world.conf.exit_role(chair)
        world.conf.revoke(revoc2)
        with pytest.raises(RevokedError):
            world.conf.validate(member)

    def test_refresh_after_nonfatal_revocation(self, world):
        """Section 5.5.2: a delegated client re-applies to the server, not
        the elector, because the delegation certificate remains valid."""
        chair = self.chair(world)
        deleg, _ = world.conf.delegate(chair, "Member")
        member = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.groups.remove_member("staff", world.uid("dm"))
        world.groups.add_member("staff", world.uid("dm"))
        with pytest.raises(RevokedError):
            world.conf.validate(member)
        fresh = world.conf.enter_delegated_role(
            world.dm.client_id, deleg, credentials=(world.dm_login,)
        )
        world.conf.validate(fresh)


class TestCompoundCertificates:
    def test_chair_and_member_in_one_certificate(self):
        """Section 4.3: a Chair is likely also a Member; both roles can be
        entered with a single request."""
        clock = ManualClock()
        svc = OasisService("Meet", clock=clock)
        svc.add_rolefile("main", """
def Person(p)  p: string
Person(p) <-
Chair(p) <- Person(p)
Member(p) <- Person(p)
""")
        host = HostOS("h")
        client = host.create_domain().client_id
        person = svc.enter_role(client, "Person", ("fred",))
        cert = svc.enter_roles(client, ["Chair", "Member"], ("fred",), credentials=(person,))
        assert cert.roles == frozenset({"Chair", "Member"})
        assert cert.role_bits != 0
        svc.validate(cert, required_role="Chair")
        svc.validate(cert, required_role="Member")

    def test_compound_requires_identical_args(self):
        svc = OasisService("S")
        svc.add_rolefile("main", """
def A(x)  x: integer
def B(x)  x: integer
A(x) <-
B(7) <-
""")
        host = HostOS("h")
        with pytest.raises(EntryDenied):
            svc.enter_roles(host.create_domain().client_id, ["A", "B"], (3,))


class TestRoleBasedRevocation:
    """Sections 3.3.2 / 4.11: hire, fire, re-hire."""

    def make_meeting(self):
        svc = OasisService("Meeting")
        svc.add_rolefile("main", """
def Person(p)  p: string
Person(p) <-
Chair(p) <- Person(p) : p == "boss"
Candidate(p) <- Person(p)
Member(p) <- Candidate(p) |> Chair
""")
        host = HostOS("h")
        boss = host.create_domain().client_id
        fred = host.create_domain().client_id
        person_boss = svc.enter_role(boss, "Person", ("boss",))
        self.person_fred = svc.enter_role(fred, "Person", ("fred",))
        chair = svc.enter_role(boss, "Chair", ("boss",), credentials=(person_boss,))
        member = svc.enter_role(
            fred, "Member", ("fred",), credentials=(self.person_fred,)
        )
        return svc, boss, fred, chair, member

    def test_chair_ejects_member(self):
        svc, boss, fred, chair, member = self.make_meeting()
        revoked = svc.revoke_role_instance(chair, "Member", ("fred",))
        assert revoked == 1
        with pytest.raises(RevokedError):
            svc.validate(member)

    def test_revocation_bars_reentry(self):
        svc, boss, fred, chair, member = self.make_meeting()
        svc.revoke_role_instance(chair, "Member", ("fred",))
        with pytest.raises(EntryDenied):
            svc.enter_role(fred, "Member", ("fred",), credentials=(self.person_fred,))

    def test_reinstate_allows_rehire(self):
        svc, boss, fred, chair, member = self.make_meeting()
        svc.revoke_role_instance(chair, "Member", ("fred",))
        svc.reinstate_role_instance(chair, "Member", ("fred",))
        fresh = svc.enter_role(
            fred, "Member", ("fred",), credentials=(self.person_fred,)
        )
        svc.validate(fresh)

    def test_non_revoker_role_denied(self):
        svc, boss, fred, chair, member = self.make_meeting()
        with pytest.raises(MisuseError):
            svc.revoke_role_instance(member, "Member", ("fred",))

    def test_revoker_identity_unneeded(self):
        """The revoker names the role instance by its parameters; they
        need not know the client's identity (section 3.3.2)."""
        svc, boss, fred, chair, member = self.make_meeting()
        # a second, different member
        host = HostOS("h2")
        mary = host.create_domain().client_id
        person_mary = svc.enter_role(mary, "Person", ("mary",))
        mary_member = svc.enter_role(
            mary, "Member", ("mary",), credentials=(person_mary,)
        )
        svc.revoke_role_instance(chair, "Member", ("fred",))
        svc.validate(mary_member)   # unaffected
        with pytest.raises(RevokedError):
            svc.validate(member)


class TestIntermediateRoles:
    def test_fig_3_2_precedence(self):
        """Fig 3.2: Bar(1) via the intermediate Bas(2) beats Bar(2)."""
        svc = OasisService("S")
        svc.add_rolefile("main", """
def Foo(n)  n: integer
def Bas(n)  n: integer
def Bar(n)  n: integer
Foo(n) <-
Bas(2) <- Foo(n)
Bar(1) <- Bas(2)
Bar(2) <- Foo(n)
""")
        host = HostOS("h")
        client = host.create_domain().client_id
        foo = svc.enter_role(client, "Foo", (9,))
        bar = svc.enter_role(client, "Bar", credentials=(foo,))
        assert bar.args == (1,)

    def test_intermediate_roles_entered_automatically(self):
        svc = OasisService("S")
        svc.add_rolefile("main", """
def Base(u)  u: string
Base(u) <-
Mid(u) <- Base(u)
Top(u) <- Mid(u)
""")
        host = HostOS("h")
        client = host.create_domain().client_id
        base = svc.enter_role(client, "Base", ("x",))
        top = svc.enter_role(client, "Top", credentials=(base,))
        assert top.names_role("Top")

    def test_starred_intermediate_inherits_dependencies(self):
        """A membership reached through a starred intermediate must be
        revoked when the intermediate's own membership rules fail."""
        from repro.core import GroupService
        groups = GroupService()
        groups.create_group("g", {"x"})
        svc = OasisService("S", groups=groups)
        svc.add_rolefile("main", """
def Base(u)  u: string
Base(u) <-
Mid(u) <- Base(u) : (u in g)*
Top(u) <- Mid(u)*
""")
        host = HostOS("h")
        client = host.create_domain().client_id
        base = svc.enter_role(client, "Base", ("x",))
        top = svc.enter_role(client, "Top", credentials=(base,))
        groups.remove_member("g", "x")
        with pytest.raises(RevokedError):
            svc.validate(top)


class TestAuditing:
    def test_current_members_query(self, world):
        """Section 4.13: the server can list current clients."""
        world.conf.enter_role(
            world.jmb.client_id, "Chair", credentials=(world.jmb_login,)
        )
        holders = world.conf.audit.current_members()
        assert (("Chair", ()), [str(world.jmb.client_id)]) in list(holders.items())

    def test_fraud_tally(self, world):
        for _ in range(3):
            try:
                world.login.validate(world.jmb_login, claimed_client=world.dm.client_id)
            except FraudError:
                pass
        tally = world.login.audit.fraud_by_client()
        assert tally[str(world.jmb_login.client)] == 3
