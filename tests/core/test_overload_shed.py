"""Admission control under backpressure (ISSUE 7 satellite).

A service whose outbound notification channels are at their queue bound
must not take on new state: a role entered now would mint revocation
obligations the service already cannot deliver.  The entry paths (role
entry, certificate issue) consult ``Linkage.backpressured_of`` and shed
early with a structured :class:`~repro.errors.OverloadError` — no
credential record is created, so there is nothing to revoke later.
"""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import OverloadError
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WirePolicy

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

MAX_QUEUE = 3


def build_world():
    sim = Simulator()
    net = Network(sim, seed=17, default_delay=0.01)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(
        net, policy=WirePolicy(max_batch=64, max_delay=0.05, max_queue=MAX_QUEUE)
    )
    login = OasisService(
        "Login", registry=registry, linkage=linkage, clock=clock
    )
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService(
        "Files", registry=registry, linkage=linkage, clock=clock
    )
    files.add_rolefile("main", FILES_RDL)
    linkage.monitor(login, files, period=0.5, grace=2.0)
    sim.run_until(1.0)
    return sim, net, linkage, login, files


def jam_login(sim, net, linkage, login, files, host):
    """Fill Login's outbound channel to its queue bound: subscribe Files
    to a handful of records, cut the link, revoke them all."""
    sessions = []
    for index in range(MAX_QUEUE + 2):
        domain = host.create_domain()
        cert = login.enter_role(domain.client_id, "LoggedOn", (f"u{index}", "h"))
        files.enter_role(domain.client_id, "Reader", credentials=(cert,))
        sessions.append(cert)
    sim.run_until(sim.now + 2.0)
    net.set_link_state("oasis:Login", "oasis:Files", False)
    for cert in sessions:
        login.exit_role(cert)
    sim.run_until(sim.now + 1.0)     # flush timers fire into the dead link
    assert linkage.backpressured_of("Login"), "setup failed to jam the channel"


def test_role_entry_sheds_when_outbound_channels_are_jammed():
    sim, net, linkage, login, files = build_world()
    host = HostOS("shed-host")
    jam_login(sim, net, linkage, login, files, host)

    domain = host.create_domain()
    with pytest.raises(OverloadError) as excinfo:
        login.enter_role(domain.client_id, "LoggedOn", ("newcomer", "h"))
    assert "overloaded" in str(excinfo.value)
    assert login.stats.entries_shed == 1
    # an unjammed service is unaffected
    assert files.stats.entries_shed == 0


def test_certificate_issue_sheds_when_jammed():
    sim, net, linkage, login, files = build_world()
    host = HostOS("shed-host")
    domain = host.create_domain()
    keeper = login.enter_role(domain.client_id, "LoggedOn", ("keeper", "h"))
    jam_login(sim, net, linkage, login, files, host)
    with pytest.raises(OverloadError):
        login.delegate(keeper, "LoggedOn")
    assert login.stats.entries_shed == 1


def test_entry_recovers_after_link_restores_and_queue_drains():
    sim, net, linkage, login, files = build_world()
    host = HostOS("shed-host")
    jam_login(sim, net, linkage, login, files, host)
    domain = host.create_domain()
    with pytest.raises(OverloadError):
        login.enter_role(domain.client_id, "LoggedOn", ("early", "h"))

    net.set_link_state("oasis:Login", "oasis:Files", True)
    sim.run_until(sim.now + 3.0)     # backlog drains on link-up
    assert not linkage.backpressured_of("Login")
    cert = login.enter_role(domain.client_id, "LoggedOn", ("late", "h"))
    assert login.validate(cert) is cert


def test_shedding_can_be_disabled():
    sim, net, linkage, login, files = build_world()
    host = HostOS("shed-host")
    jam_login(sim, net, linkage, login, files, host)
    login.shed_on_overload = False
    domain = host.create_domain()
    cert = login.enter_role(domain.client_id, "LoggedOn", ("forced", "h"))
    assert cert is not None
    assert login.stats.entries_shed == 0
