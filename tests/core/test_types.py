"""Unit tests for the RDL type system and marshalling (sections 3.2.1, 4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    INTEGER,
    STRING,
    ObjectRef,
    ObjectType,
    SetType,
    TypeTable,
    infer_type_of_value,
    marshal_args,
    unmarshal_args,
)
from repro.errors import RDLTypeError


class TestIntegerType:
    def test_roundtrip(self):
        assert INTEGER.unmarshal(INTEGER.marshal(42)) == 42

    def test_negative(self):
        assert INTEGER.unmarshal(INTEGER.marshal(-7)) == -7

    def test_rejects_bool(self):
        with pytest.raises(RDLTypeError):
            INTEGER.marshal(True)

    def test_rejects_string(self):
        with pytest.raises(RDLTypeError):
            INTEGER.marshal("3")

    def test_rejects_out_of_range(self):
        with pytest.raises(RDLTypeError):
            INTEGER.marshal(2**63)

    def test_parse_literal(self):
        assert INTEGER.parse_literal("123") == 123
        with pytest.raises(RDLTypeError):
            INTEGER.parse_literal("abc")

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        assert INTEGER.unmarshal(INTEGER.marshal(value)) == value


class TestStringType:
    def test_roundtrip(self):
        assert STRING.unmarshal(STRING.marshal("hello")) == "hello"

    def test_unicode(self):
        assert STRING.unmarshal(STRING.marshal("naïve λ")) == "naïve λ"

    def test_rejects_int(self):
        with pytest.raises(RDLTypeError):
            STRING.marshal(3)

    @given(st.text(max_size=200))
    def test_roundtrip_property(self, value):
        assert STRING.unmarshal(STRING.marshal(value)) == value


class TestSetType:
    def test_roundtrip(self):
        rwx = SetType("rwx")
        assert rwx.unmarshal(rwx.marshal(frozenset("rw"))) == frozenset("rw")

    def test_empty_set(self):
        rwx = SetType("rwx")
        assert rwx.unmarshal(rwx.marshal(frozenset())) == frozenset()

    def test_bitset_subset_test_on_wire(self):
        """Section 4.3: sets marshal to bit-sets allowing subset tests."""
        rwx = SetType("rwx")
        small = rwx.to_bits(frozenset("r"))
        large = rwx.to_bits(frozenset("rw"))
        assert small & large == small          # subset
        assert rwx.to_bits(frozenset("x")) & large == 0

    def test_rejects_foreign_characters(self):
        with pytest.raises(RDLTypeError):
            SetType("rwx").marshal(frozenset("rz"))

    def test_rejects_duplicate_alphabet(self):
        with pytest.raises(RDLTypeError):
            SetType("rr")

    def test_parse_literal(self):
        assert SetType("eaf").parse_literal("ae") == frozenset("ae")

    def test_equality_by_alphabet(self):
        assert SetType("rwx") == SetType("rwx")
        assert SetType("rwx") != SetType("rw")

    @given(st.sets(st.sampled_from("rwxad")))
    def test_roundtrip_property(self, value):
        t = SetType("rwxad")
        assert t.unmarshal(t.marshal(frozenset(value))) == frozenset(value)


class TestObjectType:
    def test_default_parser(self):
        uid = ObjectType("Login.userid")
        ref = uid.parse_literal("jmb")
        assert ref == ObjectRef("Login.userid", b"jmb")

    def test_roundtrip(self):
        uid = ObjectType("Login.userid")
        ref = ObjectRef("Login.userid", b"\x01\x02")
        assert uid.unmarshal(uid.marshal(ref)) == ref

    def test_type_mismatch_rejected(self):
        uid = ObjectType("Login.userid")
        with pytest.raises(RDLTypeError):
            uid.marshal(ObjectRef("Other.fileid", b"x"))

    def test_custom_parser(self):
        uid = ObjectType("t", parser=lambda s: ObjectRef("t", s.upper().encode()))
        assert uid.parse_literal("ab").identity == b"AB"

    def test_equality_only_comparison(self):
        a = ObjectRef("t", b"a")
        b = ObjectRef("t", b"a")
        assert a == b
        assert hash(a) == hash(b)


class TestTypeTable:
    def test_builtin_lookup(self):
        table = TypeTable()
        assert table.lookup("integer") is INTEGER
        assert table.lookup("string") is STRING
        assert table.lookup("{rwx}") == SetType("rwx")

    def test_register_and_alias(self):
        table = TypeTable()
        uid = ObjectType("Login.userid")
        table.register(uid, "userid")
        assert table.lookup("Login.userid") is uid
        assert table.lookup("userid") is uid

    def test_unknown_raises(self):
        with pytest.raises(RDLTypeError):
            TypeTable().lookup("nonsense")

    def test_has(self):
        table = TypeTable()
        assert table.has("integer")
        assert not table.has("nonsense")


class TestMarshalArgs:
    def test_roundtrip_mixed(self):
        types = [INTEGER, STRING, SetType("rwx")]
        values = (5, "x", frozenset("rw"))
        wire = marshal_args(types, values)
        assert unmarshal_args(types, wire) == values

    def test_deterministic(self):
        types = [STRING, INTEGER]
        assert marshal_args(types, ("a", 1)) == marshal_args(types, ("a", 1))

    def test_arity_mismatch(self):
        with pytest.raises(RDLTypeError):
            marshal_args([INTEGER], (1, 2))

    def test_wire_arity_check(self):
        wire = marshal_args([INTEGER], (1,))
        with pytest.raises(RDLTypeError):
            unmarshal_args([INTEGER, INTEGER], wire)


class TestInference:
    def test_int(self):
        assert infer_type_of_value(3) is INTEGER

    def test_str(self):
        assert infer_type_of_value("a") is STRING

    def test_bool_rejected(self):
        with pytest.raises(RDLTypeError):
            infer_type_of_value(True)

    def test_objref(self):
        t = infer_type_of_value(ObjectRef("x", b"y"))
        assert t.name == "x"
