"""Unit tests for signatures and the rolling secret table (sections 4.2, 5.5.1)."""

import pytest

from repro.core.secrets import RecordingSigner, RollingSecretTable, Signer
from repro.errors import FraudError
from repro.runtime.clock import ManualClock


def make_signer(**kwargs):
    clock = ManualClock()
    table = RollingSecretTable(clock=clock, seed=b"test", **kwargs)
    return clock, table, Signer(table)


class TestRollingSecretTable:
    def test_roll_advances_index(self):
        _, table, _ = make_signer()
        first = table.current_index
        table.roll()
        assert table.current_index == first + 1

    def test_old_secrets_stay_valid_until_lifetime(self):
        clock, table, _ = make_signer(lifetime=100.0)
        first = table.current_index
        table.roll()
        assert table.get(first) is not None
        clock.advance(101.0)
        assert table.get(first) is None

    def test_current_secret_never_expires(self):
        clock, table, _ = make_signer(lifetime=10.0)
        clock.advance(1000.0)
        assert table.get(table.current_index) is not None

    def test_maybe_roll_honours_period(self):
        clock, table, _ = make_signer(roll_period=50.0)
        index = table.current_index
        table.maybe_roll()
        assert table.current_index == index
        clock.advance(51.0)
        table.maybe_roll()
        assert table.current_index == index + 1

    def test_invalidate_all(self):
        _, table, _ = make_signer()
        old = table.current_index
        table.invalidate_all()
        assert table.get(old) is None
        assert table.get(table.current_index) is not None

    def test_seeded_tables_deterministic(self):
        t1 = RollingSecretTable(seed=b"x")
        t2 = RollingSecretTable(seed=b"x")
        assert t1.get(0) == t2.get(0)


class TestSigner:
    def test_sign_verify_roundtrip(self):
        _, _, signer = make_signer()
        index, sig = signer.sign(b"hello")
        assert signer.verify(b"hello", index, sig)

    def test_modified_text_fails(self):
        _, _, signer = make_signer()
        index, sig = signer.sign(b"hello")
        assert not signer.verify(b"hellO", index, sig)

    def test_wrong_signature_fails(self):
        _, _, signer = make_signer()
        index, sig = signer.sign(b"hello")
        assert not signer.verify(b"hello", index, b"\x00" * len(sig))

    def test_expired_secret_fails(self):
        clock, table, signer = make_signer(lifetime=10.0)
        index, sig = signer.sign(b"hello")
        table.roll()
        clock.advance(11.0)
        assert not signer.verify(b"hello", index, sig)

    def test_require_valid_raises_fraud(self):
        _, _, signer = make_signer()
        with pytest.raises(FraudError):
            signer.require_valid(b"x", 0, b"bad")

    def test_signature_length_respected(self):
        table = RollingSecretTable(seed=b"x")
        for length in (4, 16, 32):
            signer = Signer(table, signature_length=length)
            _, sig = signer.sign(b"t")
            assert len(sig) == length

    def test_bad_length_rejected(self):
        table = RollingSecretTable(seed=b"x")
        with pytest.raises(ValueError):
            Signer(table, signature_length=2)

    def test_different_services_cannot_validate(self):
        """Fig 4.1: certificates may only be validated by the issuing
        instance, as the secret is private to it."""
        t1 = RollingSecretTable(seed=b"svc1")
        t2 = RollingSecretTable(seed=b"svc2")
        s1, s2 = Signer(t1), Signer(t2)
        index, sig = s1.sign(b"cert")
        assert not s2.verify(b"cert", index, sig)


class TestRecordingSigner:
    def test_roundtrip(self):
        signer = RecordingSigner()
        index, sig = signer.sign(b"cert")
        assert signer.verify(b"cert", index, sig)

    def test_unissued_fails(self):
        signer = RecordingSigner()
        signer.sign(b"cert")
        assert not signer.verify(b"other", 1, (1).to_bytes(8, "big"))

    def test_require_valid(self):
        signer = RecordingSigner()
        with pytest.raises(FraudError):
            signer.require_valid(b"x", 5, b"12345678")
