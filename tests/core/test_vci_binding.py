"""VCI-bound credentials (section 2.8.1, integrated with the service).

"Whenever a protection domain obtains a credential, the credential is
associated with a particular VCI, and can therefore only be used by
protection domains who may name themselves using the VCI."  The login
process pattern: create a VCI per user task, acquire credentials against
it, fork children holding only the relevant VCI.
"""

import pytest

from repro.core import HostOS, OasisService
from repro.errors import FraudError


@pytest.fixture
def world():
    svc = OasisService("S")
    svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
    host = HostOS("ws")
    return svc, host


def test_vci_bound_certificate_usable_by_holder(world):
    svc, host = world
    domain = host.create_domain()
    vci = domain.new_vci()
    cert = svc.enter_role(domain.client_id, "Anon", (1,), vci=vci)
    svc.validate(cert, domain=domain)


def test_vci_binding_is_signed(world):
    import dataclasses
    svc, host = world
    domain = host.create_domain()
    other = host.create_domain()
    vci = domain.new_vci()
    stolen_vci = other.new_vci()
    cert = svc.enter_role(domain.client_id, "Anon", (1,), vci=vci)
    forged = dataclasses.replace(cert, vci=stolen_vci)
    with pytest.raises(FraudError):
        svc.validate(forged, domain=other)


def test_domain_without_the_vci_cannot_use(world):
    """The 2.8.1 scenario: credentials A,B on VCI x; a child given only
    VCI y cannot use them 'even if it stole these from its parent'."""
    svc, host = world
    parent = host.create_domain()
    vci_x = parent.new_vci()
    vci_y = parent.new_vci()
    cert_on_x = svc.enter_role(parent.client_id, "Anon", (1,), vci=vci_x)
    child = parent.fork(pass_vcis={vci_y})
    with pytest.raises(FraudError, match="may not use"):
        svc.validate(cert_on_x, domain=child)


def test_child_with_delegated_vci_may_use(world):
    svc, host = world
    parent = host.create_domain()
    vci = parent.new_vci()
    cert = svc.enter_role(parent.client_id, "Anon", (1,), vci=vci)
    child = parent.fork(pass_vcis={vci})
    svc.validate(cert, domain=child)


def test_unbound_certificate_unaffected(world):
    svc, host = world
    domain = host.create_domain()
    cert = svc.enter_role(domain.client_id, "Anon", (1,))
    assert cert.vci is None
    svc.validate(cert, domain=host.create_domain())   # no VCI check applies


def test_exited_domain_loses_vci_credentials(world):
    svc, host = world
    domain = host.create_domain()
    vci = domain.new_vci()
    cert = svc.enter_role(domain.client_id, "Anon", (1,), vci=vci)
    domain.exit()
    with pytest.raises(FraudError):
        svc.validate(cert, domain=domain)


def test_login_process_pattern(world):
    """One login process serving two users keeps their credentials apart
    by VCI."""
    svc, host = world
    login_proc = host.create_domain()
    vci_alice = login_proc.new_vci()
    vci_bob = login_proc.new_vci()
    alice_cert = svc.enter_role(login_proc.client_id, "Anon", (1,), vci=vci_alice)
    bob_cert = svc.enter_role(login_proc.client_id, "Anon", (2,), vci=vci_bob)
    alice_shell = login_proc.fork(pass_vcis={vci_alice})
    bob_shell = login_proc.fork(pass_vcis={vci_bob})
    svc.validate(alice_cert, domain=alice_shell)
    svc.validate(bob_cert, domain=bob_shell)
    with pytest.raises(FraudError):
        svc.validate(bob_cert, domain=alice_shell)
    with pytest.raises(FraudError):
        svc.validate(alice_cert, domain=bob_shell)
