"""Unit + property tests for credential records (sections 4.6-4.9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.credentials import (
    CredentialRecordTable,
    RecordOp,
    RecordState,
    pack_ref,
    unpack_ref,
)
from repro.errors import OasisError

T, F, U = RecordState.TRUE, RecordState.FALSE, RecordState.UNKNOWN


def test_pack_unpack_ref_roundtrip():
    assert unpack_ref(pack_ref(12345, 678)) == (12345, 678)


class TestSources:
    def test_create_and_read(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T)
        assert table.state_of(record.ref) is T

    def test_set_state(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T)
        table.set_state(record.ref, F)
        assert table.state_of(record.ref) is F

    def test_set_on_gate_rejected(self):
        table = CredentialRecordTable()
        src = table.create_source()
        gate = table.create_and([src.ref])
        with pytest.raises(OasisError):
            table.set_state(gate.ref, F)

    def test_permanent_blocks_changes(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T)
        table.set_state(record.ref, F, permanent=True)
        table.set_state(record.ref, T)
        assert table.state_of(record.ref) is F

    def test_missing_record_reads_false(self):
        table = CredentialRecordTable()
        assert table.state_of(pack_ref(99, 0)) is F


class TestGates:
    def test_and_truth_table(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        b = table.create_source(state=T)
        gate = table.create_and([a.ref, b.ref])
        assert gate.state is T
        table.set_state(b.ref, F)
        assert table.state_of(gate.ref) is F
        table.set_state(b.ref, T)
        assert table.state_of(gate.ref) is T

    def test_or_gate(self):
        table = CredentialRecordTable()
        a = table.create_source(state=F)
        b = table.create_source(state=F)
        gate = table.create_gate(RecordOp.OR, [(a.ref, False), (b.ref, False)])
        assert gate.state is F
        table.set_state(a.ref, T)
        assert table.state_of(gate.ref) is T

    def test_nand_nor(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        nand = table.create_gate(RecordOp.NAND, [(a.ref, False)])
        nor = table.create_gate(RecordOp.NOR, [(a.ref, False)])
        assert nand.state is F
        assert nor.state is F
        table.set_state(a.ref, F)
        assert table.state_of(nand.ref) is T
        assert table.state_of(nor.ref) is T

    def test_negated_edge(self):
        """'not' as a distinguished parent->child reference (section 4.7)."""
        table = CredentialRecordTable()
        a = table.create_source(state=F)
        gate = table.create_gate(RecordOp.AND, [(a.ref, True)])
        assert gate.state is T
        table.set_state(a.ref, T)
        assert table.state_of(gate.ref) is F

    def test_unknown_propagates_through_and(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        b = table.create_source(state=T)
        gate = table.create_and([a.ref, b.ref])
        table.set_state(a.ref, U)
        assert table.state_of(gate.ref) is U
        table.set_state(b.ref, F)  # false dominates unknown in AND
        assert table.state_of(gate.ref) is F

    def test_unknown_in_or(self):
        table = CredentialRecordTable()
        a = table.create_source(state=U)
        b = table.create_source(state=F)
        gate = table.create_gate(RecordOp.OR, [(a.ref, False), (b.ref, False)])
        assert gate.state is U
        table.set_state(b.ref, T)  # true dominates unknown in OR
        assert table.state_of(gate.ref) is T

    def test_deep_cascade(self):
        """Fig 4.5: revoking one record kills an entire delegation tree."""
        table = CredentialRecordTable()
        root = table.create_source(state=T)
        layer = [root.ref]
        leaves = []
        for _depth in range(5):
            nxt = []
            for parent in layer:
                for _ in range(2):
                    gate = table.create_and([parent])
                    nxt.append(gate.ref)
            layer = nxt
            leaves = nxt
        assert all(table.state_of(ref) is T for ref in leaves)
        table.revoke(root.ref)
        assert all(table.state_of(ref) is F for ref in leaves)

    def test_missing_parent_counts_permanently_false(self):
        table = CredentialRecordTable()
        gate = table.create_and([pack_ref(404, 0)])
        assert gate.state is F
        assert gate.permanent

    def test_revoke_gate_directly(self):
        """Fig 4.6 optimisation: the conjunction record is itself the
        delegation record and may be revoked directly."""
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        gate = table.create_and([a.ref])
        assert table.revoke(gate.ref)
        assert table.state_of(gate.ref) is F
        table.set_state(a.ref, F)
        table.set_state(a.ref, T)
        assert table.state_of(gate.ref) is F  # still revoked

    def test_revoke_missing_returns_false(self):
        table = CredentialRecordTable()
        assert table.revoke(pack_ref(7, 3)) is False


class TestPermanence:
    def test_permanent_false_parent_fixes_and_gate(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        b = table.create_source(state=T)
        gate = table.create_and([a.ref, b.ref])
        table.set_state(a.ref, F, permanent=True)
        assert table.get(gate.ref).permanent
        assert table.state_of(gate.ref) is F

    def test_true_gates_never_auto_permanent(self):
        """A TRUE gate can always still be revoked, so parent permanence
        must not freeze it (the fig 4.6 conjunction record stays
        revocable)."""
        table = CredentialRecordTable()
        a = table.create_source(state=T, permanent=True)
        b = table.create_source(state=T, permanent=True)
        gate = table.create_and([a.ref, b.ref])
        assert gate.state is T
        assert not gate.permanent
        assert table.revoke(gate.ref)
        assert table.state_of(gate.ref) is F

    def test_all_false_parents_fix_or_gate(self):
        table = CredentialRecordTable()
        a = table.create_source(state=F, permanent=True)
        b = table.create_source(state=F, permanent=True)
        gate = table.create_gate(RecordOp.OR, [(a.ref, False), (b.ref, False)])
        assert gate.state is F
        assert gate.permanent

    def test_revocation_cascades_through_true_gate_chain(self):
        """Regression: an empty AND gate (no membership rules) must still
        propagate a forced revocation to its children."""
        table = CredentialRecordTable()
        top = table.create_gate(RecordOp.AND, [], direct_use=True)
        mid = table.create_and([top.ref])
        leaf = table.create_and([mid.ref])
        assert leaf.state is T
        table.revoke(top.ref)
        assert table.state_of(mid.ref) is F
        assert table.state_of(leaf.ref) is F


class TestWatches:
    def test_watch_fires_on_change(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T)
        events = []
        table.watch(record.ref, lambda r, old, new: events.append((old, new)))
        table.set_state(record.ref, F)
        assert events == [(T, F)]

    def test_watch_fires_in_cascade_order(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        gate = table.create_and([a.ref])
        order = []
        table.watch(a.ref, lambda r, o, n: order.append("src"))
        table.watch(gate.ref, lambda r, o, n: order.append("gate"))
        table.set_state(a.ref, F)
        assert order == ["gate", "src"]  # children settle before source fires

    def test_watch_all(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        changes = []
        table.watch_all(lambda r, o, n: changes.append(r.ref))
        table.set_state(a.ref, F)
        assert changes == [a.ref]


class TestExternals:
    def test_surrogate_starts_unknown(self):
        """Sections 4.9/4.10: before the first Modified notification we
        have no evidence about the remote fact — fail closed, not open."""
        table = CredentialRecordTable()
        ext = table.create_external("Login", 1234)
        assert table.state_of(ext.ref) is U

    def test_external_surrogate_updates(self):
        table = CredentialRecordTable()
        ext = table.create_external("Login", 1234)
        table.update_external("Login", 1234, F)
        assert table.state_of(ext.ref) is F

    def test_external_reuse(self):
        table = CredentialRecordTable()
        a = table.create_external("Login", 1)
        b = table.create_external("Login", 1)
        assert a.ref == b.ref

    def test_mark_service_unknown(self):
        """Section 4.10: a missed heartbeat marks external records
        Unknown, which propagates to children."""
        table = CredentialRecordTable()
        ext = table.create_external("Login", 1)
        table.update_external("Login", 1, T)
        gate = table.create_and([ext.ref])
        assert gate.state is T
        changed = table.mark_service_unknown("Login")
        assert changed == 1
        assert table.state_of(gate.ref) is U

    def test_restore_after_unknown(self):
        table = CredentialRecordTable()
        ext = table.create_external("Login", 1)
        table.mark_service_unknown("Login")
        table.update_external("Login", 1, T)
        assert table.state_of(ext.ref) is T


class TestGarbageCollection:
    def test_revoked_leaf_collected(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T, direct_use=True)
        table.revoke(record.ref)
        deleted = table.sweep()
        assert deleted == 1
        assert table.get(record.ref) is None
        assert table.state_of(record.ref) is F  # still reads revoked

    def test_live_direct_use_kept(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T, permanent=True, direct_use=True)
        assert table.sweep() == 0
        assert table.get(record.ref) is not None

    def test_uninteresting_permanent_true_collected(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T, permanent=True)
        assert table.sweep() == 1

    def test_subscribed_record_kept(self):
        table = CredentialRecordTable()
        record = table.create_source(state=T)
        table.revoke(record.ref)
        table_record = table.get(record.ref)
        table_record.subscribers.add("peer")
        assert table.sweep() == 0

    def test_magic_prevents_stale_refs(self):
        """(table index, Magic) is unique over the service lifetime."""
        table = CredentialRecordTable()
        old = table.create_source(state=T, direct_use=True)
        old_ref = old.ref
        table.revoke(old_ref)
        table.sweep()
        fresh = table.create_source(state=T)   # reuses the row
        assert fresh.index == old.index
        assert fresh.magic == old.magic + 1
        assert table.get(old_ref) is None      # stale ref does not resolve
        assert table.state_of(old_ref) is F
        assert table.get(fresh.ref) is fresh

    def test_permanent_parents_unlinked(self):
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        gate = table.create_and([a.ref], direct_use=True)
        table.set_state(a.ref, T, permanent=True)
        table.sweep()
        assert table.get(a.ref) is None        # collected
        assert table.state_of(gate.ref) is T   # child unaffected


class TestCascadeBatching:
    def test_set_states_batch_is_one_cascade(self):
        table = CredentialRecordTable()
        sources = [table.create_source(state=T) for _ in range(3)]
        gate = table.create_and([s.ref for s in sources])
        fired = []
        table.watch(gate.ref, lambda r, old, new: fired.append((old, new)))
        before = table.propagations
        table.set_states([(s.ref, F) for s in sources])
        assert table.propagations == before + 1
        assert fired == [(T, F)]  # gate notified once, not once per source

    def test_flip_flop_fires_nothing(self):
        """A record that changes and changes back while the cascade settles
        has no *net* change, so its watches stay silent."""
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        c = table.create_and([a.ref])
        # b = a̅ AND c: starts FALSE; a's revocation flips the negated edge
        # true first (b transiently TRUE), then c's fall flips b back
        b = table.create_gate(RecordOp.AND, [(a.ref, True), (c.ref, False)])
        assert b.state is F
        fired = []
        table.watch_all(lambda r, old, new: fired.append(r.index))
        table.revoke(a.ref)
        assert b.state is F and b.permanent      # settled back, absorbed
        assert fired == [c.index, a.index]       # b never reported

    def test_callback_mutation_joins_active_cascade(self):
        """A revoke issued from inside a watch callback (e.g. the service
        latching a dependent credential) extends the running cascade
        instead of nesting a second one."""
        table = CredentialRecordTable()
        a = table.create_source(state=T)
        x = table.create_source(state=T)
        gate = table.create_and([a.ref])
        x_fired = []
        table.watch(gate.ref, lambda r, old, new: table.revoke(x.ref))
        table.watch(x.ref, lambda r, old, new: x_fired.append((old, new)))
        before = table.propagations
        table.revoke(a.ref)
        assert table.propagations == before + 1
        assert table.state_of(x.ref) is F and x_fired == [(T, F)]


# ---------------------------------------------------------------- properties


@st.composite
def _graph_ops(draw):
    """A random sequence of graph-building and state-flipping operations."""
    n_sources = draw(st.integers(min_value=1, max_value=6))
    n_gates = draw(st.integers(min_value=0, max_value=8))
    gates = []
    for _ in range(n_gates):
        op = draw(st.sampled_from([RecordOp.AND, RecordOp.OR, RecordOp.NAND, RecordOp.NOR]))
        arity = draw(st.integers(min_value=1, max_value=3))
        parents = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n_sources + len(gates) - 1),
                    st.booleans(),
                ),
                min_size=arity,
                max_size=arity,
            )
        )
        gates.append((op, parents))
    flips = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_sources - 1),
                st.sampled_from([T, F, U]),
            ),
            max_size=10,
        )
    )
    return n_sources, gates, flips


def _model_eval(op, parent_states, edges):
    effective = []
    for state, negate in zip(parent_states, edges):
        if negate and state is not U:
            state = F if state is T else T
        effective.append(state)
    if op in (RecordOp.AND, RecordOp.NAND):
        if F in effective:
            base = F
        elif U in effective:
            base = U
        else:
            base = T
        flip = op is RecordOp.NAND
    else:
        if T in effective:
            base = T
        elif U in effective:
            base = U
        else:
            base = F
        flip = op in (RecordOp.NOR,)
    if flip and base is not U:
        base = F if base is T else T
    return base


@given(_graph_ops())
@settings(max_examples=200, deadline=None)
def test_incremental_propagation_matches_model(ops):
    """INVARIANT: after any sequence of source flips, every gate's state
    equals a from-scratch evaluation of the DAG (the counter-based
    incremental scheme of section 4.8 is exact)."""
    n_sources, gate_specs, flips = ops
    table = CredentialRecordTable()
    sources = [table.create_source(state=T) for _ in range(n_sources)]
    nodes = list(sources)
    specs = []  # (op, [(node_idx, negate)])
    for op, parents in gate_specs:
        refs = [(nodes[i].ref, neg) for i, neg in parents]
        gate = table.create_gate(op, refs)
        specs.append((op, parents))
        nodes.append(gate)

    source_states = [T] * n_sources
    for idx, new_state in flips:
        table.set_state(sources[idx].ref, new_state)
        source_states[idx] = new_state

    # from-scratch model evaluation in creation order (a DAG by construction)
    model = list(source_states)
    for op, parents in specs:
        parent_states = [model[i] for i, _ in parents]
        edges = [neg for _, neg in parents]
        model.append(_model_eval(op, parent_states, edges))

    for node, expected in zip(nodes, model):
        assert table.state_of(node.ref) is expected


@given(st.lists(st.sampled_from(["flip", "revoke", "sweep"]), max_size=20))
@settings(max_examples=100, deadline=None)
def test_sweep_never_resurrects_revoked(ops):
    """INVARIANT: once revoked, a ref reads FALSE forever, across any
    interleaving of flips, revocations and sweeps (name-space reuse is
    protected by the magic field)."""
    table = CredentialRecordTable()
    source = table.create_source(state=T)
    gate = table.create_and([source.ref], direct_use=True)
    revoked_refs = []
    state = T
    for op in ops:
        if op == "flip":
            state = F if state is T else T
            table.set_state(source.ref, state)
        elif op == "revoke":
            table.revoke(gate.ref)
            revoked_refs.append(gate.ref)
            gate = table.create_and([source.ref], direct_use=True)
        else:
            table.sweep()
        for ref in revoked_refs:
            assert table.state_of(ref) is F


def _model_perm(op, parent_states, parent_perms, edges, state):
    """From-scratch permanence, mirroring compute_permanent on a gate."""
    if state is not F:
        return False
    eff = []
    for s, neg in zip(parent_states, edges):
        if neg and s is not U:
            s = F if s is T else T
        eff.append(s)
    p_false = sum(1 for s, p in zip(eff, parent_perms) if p and s is F)
    p_true = sum(1 for s, p in zip(eff, parent_perms) if p and s is T)
    n = len(edges)
    if op is RecordOp.AND:
        return p_false > 0
    if op is RecordOp.NAND:
        return p_true == n
    if op is RecordOp.OR:
        return p_false == n
    return p_true > 0  # NOR


@st.composite
def _dag_with_revokes(draw):
    n_sources = draw(st.integers(min_value=1, max_value=5))
    n_gates = draw(st.integers(min_value=0, max_value=7))
    gates = []
    for _ in range(n_gates):
        op = draw(st.sampled_from([RecordOp.AND, RecordOp.OR, RecordOp.NAND, RecordOp.NOR]))
        arity = draw(st.integers(min_value=1, max_value=3))
        parents = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n_sources + len(gates) - 1),
                    st.booleans(),
                ),
                min_size=arity,
                max_size=arity,
            )
        )
        gates.append((op, parents))
    n_nodes = n_sources + n_gates
    actions = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("flip"),
                    st.integers(min_value=0, max_value=n_sources - 1),
                    st.sampled_from([T, F, U]),
                ),
                st.tuples(st.just("revoke"), st.integers(min_value=0, max_value=n_nodes - 1)),
                st.tuples(
                    st.just("revoke_many"),
                    st.lists(
                        st.integers(min_value=0, max_value=n_nodes - 1), max_size=4
                    ),
                ),
            ),
            max_size=12,
        )
    )
    return n_sources, gates, actions


@given(_dag_with_revokes())
@settings(max_examples=200, deadline=None)
def test_cascade_matches_brute_force_with_revokes(ops):
    """INVARIANT: after any interleaving of flips, single revokes and
    batched revokes, every record's (state, permanent) pair equals a
    from-scratch evaluation of the DAG — with revoked records pinned
    permanently FALSE — and each cascade's watch callbacks report exactly
    the net-changed records with the correct (old, new) transitions."""
    n_sources, gate_specs, actions = ops
    table = CredentialRecordTable()
    sources = [table.create_source(state=T) for _ in range(n_sources)]
    nodes = list(sources)
    for op, parents in gate_specs:
        nodes.append(table.create_gate(op, [(nodes[i].ref, neg) for i, neg in parents]))

    fired = []
    table.watch_all(lambda r, old, new: fired.append((r.index, old, new)))

    source_state = [T] * n_sources
    revoked = [False] * len(nodes)
    for action in actions:
        snapshot = {n.index: n.state for n in nodes}
        fired.clear()
        if action[0] == "flip":
            _, idx, new_state = action
            table.set_state(sources[idx].ref, new_state)
            if not revoked[idx]:
                source_state[idx] = new_state
        elif action[0] == "revoke":
            _, idx = action
            table.revoke(nodes[idx].ref)
            revoked[idx] = True
        else:
            _, idxs = action
            table.revoke_many([nodes[i].ref for i in idxs])
            for i in idxs:
                revoked[i] = True
        # each action is one cascade: callbacks == exact net state changes
        expected = {
            (n.index, snapshot[n.index], n.state)
            for n in nodes
            if n.state is not snapshot[n.index]
        }
        assert set(fired) == expected
        assert len(fired) == len(expected)  # and each fires exactly once

    # from-scratch recompute in creation order (a DAG by construction)
    states, perms = [], []
    for i in range(n_sources):
        states.append(F if revoked[i] else source_state[i])
        perms.append(revoked[i])
    for j, (op, parents) in enumerate(gate_specs):
        if revoked[n_sources + j]:
            states.append(F)
            perms.append(True)
            continue
        parent_states = [states[i] for i, _ in parents]
        edges = [neg for _, neg in parents]
        state = _model_eval(op, parent_states, edges)
        states.append(state)
        perms.append(_model_perm(op, parent_states, [perms[i] for i, _ in parents], edges, state))

    for node, state, perm in zip(nodes, states, perms):
        assert node.state is state
        assert node.permanent is perm


@st.composite
def _random_tree(draw):
    n_gates = draw(st.integers(min_value=1, max_value=10))
    gates = []
    for i in range(n_gates):
        op = draw(st.sampled_from([RecordOp.AND, RecordOp.OR, RecordOp.NAND, RecordOp.NOR]))
        parent = draw(st.integers(min_value=0, max_value=i))  # any earlier node
        gates.append((op, parent))
    target = draw(st.integers(min_value=0, max_value=n_gates))
    return gates, target


@given(_random_tree())
@settings(max_examples=200, deadline=None)
def test_tree_cascade_fires_descendants_before_ancestors(ops):
    """INVARIANT (callback order): on a tree — where every record has one
    parent, so settling depth equals distance from the revoked node — a
    record's watch always fires before its ancestors'. The service layer
    relies on this: dependents are torn down before the credential that
    doomed them reports its own change."""
    gate_specs, target = ops
    table = CredentialRecordTable()
    nodes = [table.create_source(state=T)]
    parent_of = {0: None}
    for op, parent in gate_specs:
        gate = table.create_gate(op, [(nodes[parent].ref, False)])
        parent_of[len(nodes)] = parent
        nodes.append(gate)

    fired = []
    table.watch_all(lambda r, old, new: fired.append(r.index))
    table.revoke(nodes[target].ref)

    index_to_pos = {nodes[i].index: i for i in range(len(nodes))}
    position = {idx: pos for pos, idx in enumerate(fired)}
    for idx in fired:
        node_pos = index_to_pos[idx]
        ancestor = parent_of[node_pos]
        while ancestor is not None:
            anc_index = nodes[ancestor].index
            if anc_index in position:
                assert position[idx] < position[anc_index]
            ancestor = parent_of[ancestor]


@given(st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_recycled_rows_never_serve_stale_refs(batch_sizes):
    """INVARIANT: sweep() recycles table rows, but the magic field keeps
    every pre-sweep CRR dead forever — a stale ref never resolves to the
    new occupant of its row, even as rows are reused round after round."""
    table = CredentialRecordTable()
    dead_refs = []
    reused = False
    for n in batch_sizes:
        live = [table.create_source(state=T, direct_use=True) for _ in range(n)]
        dead_indices = {unpack_ref(d)[0] for d in dead_refs}
        reused = reused or any(r.index in dead_indices for r in live)
        # the new occupants answer for themselves...
        for record in live:
            assert table.get(record.ref) is record
            assert table.state_of(record.ref) is T
        # ...while every stale ref stays dead
        for ref in dead_refs:
            assert table.get(ref) is None
            assert table.state_of(ref) is F
        table.revoke_many([r.ref for r in live])
        table.sweep()
        dead_refs.extend(r.ref for r in live)
    assert reused  # the free list actually recycled rows under us
    for ref in dead_refs:
        assert table.get(ref) is None
        assert table.state_of(ref) is F
