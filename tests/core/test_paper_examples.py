"""End-to-end tests for the remaining worked examples of chapter 3:
legacy Unix ACL embedding (3.3.3), shared authorship with attribute-based
access control (3.4.4), and the golf club quorum (3.4.5)."""

import pytest

from repro.core import HostOS, OasisService
from repro.core.credentials import RecordState
from repro.core.types import SetType
from repro.errors import EntryDenied, RevokedError
from repro.mssa.acl import unixacl


class TestUnixAclEmbedding:
    """Section 3.3.3: 'rjh21=rwx staff=r-x other=r--' as an RDL rule."""

    def make_service(self, user_groups):
        def unixacl_fn(text, user):
            return unixacl(text, user, user_groups.get(user, set()))

        unixacl_fn.rdl_type = SetType("rwx")
        svc = OasisService("Files", functions={"unixacl": unixacl_fn})
        svc.add_rolefile("main", """
def LoggedOn(u)  u: string
LoggedOn(u) <-
UseFile(r) <- LoggedOn(u) : r = unixacl("rjh21=rwx staff=r-x other=r--", u)
""")
        return svc

    def test_owner_gets_full_rights(self):
        svc = self.make_service({})
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("rjh21",))
        cert = svc.enter_role(client, "UseFile", credentials=(login,))
        assert cert.args[0] == frozenset("rwx")

    def test_group_member_gets_group_rights(self):
        svc = self.make_service({"dm": {"staff"}})
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("dm",))
        cert = svc.enter_role(client, "UseFile", credentials=(login,))
        assert cert.args[0] == frozenset("rx")

    def test_other_falls_through(self):
        svc = self.make_service({})
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("guest",))
        cert = svc.enter_role(client, "UseFile", credentials=(login,))
        assert cert.args[0] == frozenset("r")


class TestSharedAuthorship:
    """Section 3.4.4: the author is identified *implicitly* as the
    creator of the document via a watchable server function, so one
    rolefile works for many documents."""

    def make_service(self):
        creators = {"DOC": "rjh21"}
        finalised = {"DOC": False}

        class DocService(OasisService):
            pass

        svc_holder = []

        def creator(doc):
            # watchable: (value, credential token)
            svc = svc_holder[0]
            token = svc._doc_records.setdefault(
                doc, svc.credentials.create_source(state=RecordState.TRUE).ref
            )
            return creators[doc], token

        svc = DocService("Docs", watchable={"creator": creator})
        svc._doc_records = {}
        svc_holder.append(svc)
        svc.add_rolefile("main", """
def LoggedOn(u)  u: string
def Rights(r)  r: {eaf}
LoggedOn(u) <-
Author <- LoggedOn(u) : (u = creator("DOC"))*
Editor <- LoggedOn("MrEd")
Rights({ae}) <- Author
Rights({af}) <- Editor
""")
        return svc

    def test_author_identified_implicitly(self):
        svc = self.make_service()
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("rjh21",))
        author = svc.enter_role(client, "Author", credentials=(login,))
        rights = svc.enter_role(client, "Rights", credentials=(login,))
        assert rights.args[0] == frozenset("ae")   # edit + annotate

    def test_editor_rights(self):
        svc = self.make_service()
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("MrEd",))
        rights = svc.enter_role(client, "Rights", credentials=(login,))
        assert rights.args[0] == frozenset("af")   # annotate + finalise

    def test_non_author_denied(self):
        svc = self.make_service()
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("someone",))
        with pytest.raises(EntryDenied):
            svc.enter_role(client, "Author", credentials=(login,))

    def test_creator_change_revokes_author(self):
        """Attribute-based membership rule: the starred creator() call
        makes authorship depend on the document's state."""
        svc = self.make_service()
        client = HostOS("h").create_domain().client_id
        login = svc.enter_role(client, "LoggedOn", ("rjh21",))
        author = svc.enter_role(client, "Author", credentials=(login,))
        svc.validate(author)
        # the document changes hands: the service revokes the attribute
        svc.credentials.revoke(svc._doc_records["DOC"])
        with pytest.raises(RevokedError):
            svc.validate(author)


class TestGolfClubQuorum:
    """Section 3.4.5: joining needs recommendations from two *different*
    existing members."""

    def make_club(self):
        svc = OasisService("Golf")
        svc.add_rolefile("main", """
def Person(p)  p: string
def Candidate(p)  p: string
def Member(p)  p: string
def Recommend(p, e)  p: string  e: string
Person(p) <-
Candidate(p) <- Person(p)
Recommend(p, e) <- Candidate(p)* <|* Member(e)
Member(p) <- Recommend(p, e1)* & Recommend(p, e2)* : e1 != e2
""")
        host = HostOS("club")
        founders = {}
        # bootstrap: the service owner installs two founding members
        # directly (section 4.12: certificates may be issued for any
        # reason; RDL is just the usual case)
        for name in ("alice", "bob"):
            client = host.create_domain().client_id
            record = svc.credentials.create_source(direct_use=True)
            state = svc._rolefile_state("main")
            founders[name] = svc._issue(
                client, frozenset({"Member"}), (name,), record, state, "main", "Member"
            )
        return svc, host, founders

    def join(self, svc, host, founders, recommenders):
        client = host.create_domain().client_id
        person = svc.enter_role(client, "Person", ("newbie",))
        candidate = svc.enter_role(client, "Candidate", ("newbie",),
                                   credentials=(person,))
        recommendations = []
        for name in recommenders:
            delegation, _ = svc.delegate(
                founders[name], "Recommend", role_args=("newbie", name)
            )
            recommendations.append(
                svc.enter_delegated_role(client, delegation, credentials=(person,))
            )
        return svc.enter_role(
            client, "Member", ("newbie",),
            credentials=tuple([person] + recommendations),
        )

    def test_two_distinct_recommenders_admit(self):
        svc, host, founders = self.make_club()
        member = self.join(svc, host, founders, ["alice", "bob"])
        assert member.names_role("Member")
        svc.validate(member)

    def test_one_recommender_insufficient(self):
        svc, host, founders = self.make_club()
        with pytest.raises(EntryDenied):
            self.join(svc, host, founders, ["alice"])

    def test_same_recommender_twice_insufficient(self):
        """The e1 != e2 constraint: two recommendations from the same
        member do not satisfy the quorum."""
        svc, host, founders = self.make_club()
        with pytest.raises(EntryDenied):
            self.join(svc, host, founders, ["alice", "alice"])

    def test_membership_depends_on_recommendations(self):
        """Both recommendation conditions are starred: revoking either
        recommendation revokes the membership."""
        svc, host, founders = self.make_club()
        client = host.create_domain().client_id
        person = svc.enter_role(client, "Person", ("newbie",))
        recs = []
        revocations = []
        for name in ("alice", "bob"):
            delegation, revocation = svc.delegate(
                founders[name], "Recommend", role_args=("newbie", name)
            )
            recs.append(svc.enter_delegated_role(client, delegation,
                                                 credentials=(person,)))
            revocations.append(revocation)
        member = svc.enter_role(client, "Member", ("newbie",),
                                credentials=tuple([person] + recs))
        svc.validate(member)
        svc.revoke(revocations[0])   # alice withdraws her recommendation
        with pytest.raises(RevokedError):
            svc.validate(member)
