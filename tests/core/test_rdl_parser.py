"""Unit tests for the RDL lexer and parser (chapter 3 grammar)."""

import pytest

from repro.core.rdl.ast import (
    BoolFunc,
    Comparison,
    FuncCall,
    GroupTest,
    Literal,
    LogicOp,
    NotOp,
    RoleRef,
    Variable,
)
from repro.core.rdl.lexer import tokenize
from repro.core.rdl.parser import parse_rolefile
from repro.errors import RDLSyntaxError


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('Chair <- Login.LoggedOn("jmb", h)')]
        assert kinds == [
            "IDENT", "<-", "IDENT", ".", "IDENT", "(", "STRING", ",",
            "IDENT", ")", "NEWLINE", "EOF",
        ]

    def test_election_symbols(self):
        kinds = [t.kind for t in tokenize("A <- B <|* C")]
        assert "<|*" in kinds

    def test_revoke_symbol(self):
        kinds = [t.kind for t in tokenize("A <- B |> C")]
        assert "|>" in kinds

    def test_latex_conjunction_alias(self):
        kinds = [t.kind for t in tokenize(r"A <- B /\ C")]
        assert kinds.count("&") == 1

    def test_set_literal(self):
        tokens = tokenize("Rights({ae}) <- Author")
        assert any(t.kind == "SET" and t.text == "ae" for t in tokens)

    def test_comment_ignored(self):
        tokens = tokenize("# nothing here\nA <- B\n")
        assert tokens[0].kind == "IDENT"

    def test_newline_suppressed_in_parens(self):
        tokens = tokenize("A <- B(x,\n  y)")
        kinds = [t.kind for t in tokens]
        assert kinds.count("NEWLINE") == 1  # only the final one

    def test_string_escapes(self):
        tokens = tokenize(r'A <- B("a\"b")')
        assert any(t.kind == "STRING" and t.text == 'a"b' for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(RDLSyntaxError):
            tokenize('A <- B("oops')

    def test_error_carries_position(self):
        with pytest.raises(RDLSyntaxError) as err:
            tokenize("A <- B\nC <- @")
        assert err.value.line == 2

    def test_negative_integer(self):
        tokens = tokenize("A(-5) <- B")
        assert any(t.kind == "INT" and t.text == "-5" for t in tokens)


class TestParser:
    def test_simple_entry(self):
        rf = parse_rolefile('Chair <- Login.LoggedOn("jmb", h)')
        stmt = rf.statements[0]
        assert stmt.head == RoleRef(None, "Chair")
        assert stmt.conditions[0].service == "Login"
        assert stmt.conditions[0].name == "LoggedOn"
        assert stmt.conditions[0].args == (Literal("jmb"), Variable("h"))

    def test_starred_condition(self):
        rf = parse_rolefile("A <- B(x)* & C(y)")
        assert rf.statements[0].conditions[0].starred
        assert not rf.statements[0].conditions[1].starred

    def test_election_form(self):
        rf = parse_rolefile("Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*")
        stmt = rf.statements[0]
        assert stmt.is_election
        assert stmt.delegation_starred
        assert stmt.elector.name == "Chair"
        constraint = stmt.constraint
        assert isinstance(constraint, GroupTest)
        assert constraint.group == "staff"
        assert constraint.starred

    def test_plain_election(self):
        rf = parse_rolefile("Member <- Person <| Member")
        stmt = rf.statements[0]
        assert stmt.is_election
        assert not stmt.delegation_starred

    def test_role_based_revocation(self):
        rf = parse_rolefile("Member(p) <- Person(p) |> Chair")
        stmt = rf.statements[0]
        assert stmt.revoker is not None
        assert stmt.revoker.name == "Chair"

    def test_def_statement(self):
        rf = parse_rolefile("def Login(l, u)  l: integer  u: userid")
        decl = rf.decls[0]
        assert decl.name == "Login"
        assert decl.params == ("l", "u")
        assert dict(decl.types) == {"l": "integer", "u": "userid"}

    def test_def_with_set_type(self):
        rf = parse_rolefile("def Rights(r)  r: {eaf}")
        assert dict(rf.decls[0].types)["r"] == "{eaf}"

    def test_import(self):
        rf = parse_rolefile("import Login.userid")
        assert rf.imports[0].qualified == "Login.userid"

    def test_empty_body(self):
        rf = parse_rolefile("LoggedOn(u, h) <- ")
        stmt = rf.statements[0]
        assert stmt.conditions == ()
        assert stmt.constraint is None

    def test_constraint_comparison(self):
        rf = parse_rolefile("A(r) <- B(u) : r = unixacl(\"x=rwx\", u)")
        constraint = rf.statements[0].constraint
        assert isinstance(constraint, Comparison)
        assert constraint.op == "="
        assert isinstance(constraint.right, FuncCall)
        assert constraint.right.name == "unixacl"

    def test_constraint_boolean_logic(self):
        rf = parse_rolefile("A <- B(x) & C(y) : x != y and (x in g or y in g)")
        constraint = rf.statements[0].constraint
        assert isinstance(constraint, LogicOp)
        assert constraint.op == "and"
        assert isinstance(constraint.operands[1], LogicOp)
        assert constraint.operands[1].op == "or"

    def test_constraint_not(self):
        rf = parse_rolefile("A <- B(x) : not (x in banned)*")
        constraint = rf.statements[0].constraint
        assert isinstance(constraint, NotOp)
        assert constraint.operand.starred

    def test_constraint_bool_func(self):
        rf = parse_rolefile('A <- B(f, d) : InDir(f, d)')
        constraint = rf.statements[0].constraint
        assert isinstance(constraint, BoolFunc)
        assert constraint.call.name == "InDir"

    def test_multiple_statements_order_preserved(self):
        rf = parse_rolefile("Bas(2) <- Foo\nBar(1) <- Bas(2)\nBar(2) <- Foo\n")
        assert [s.head.name for s in rf.statements] == ["Bas", "Bar", "Bar"]
        assert rf.roles_defined() == ["Bas", "Bar"]
        assert len(rf.statements_for("Bar")) == 2

    def test_starred_head_rejected(self):
        with pytest.raises(RDLSyntaxError):
            parse_rolefile("A* <- B")

    def test_missing_arrow_rejected(self):
        with pytest.raises(RDLSyntaxError):
            parse_rolefile("A B C")

    def test_duplicate_def_params_rejected(self):
        with pytest.raises(RDLSyntaxError):
            parse_rolefile("def A(x, x)")

    def test_unknown_def_param_type_rejected(self):
        with pytest.raises(RDLSyntaxError):
            parse_rolefile("def A(x)  y: integer")

    def test_roundtrip_through_str(self):
        source = 'Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*'
        rf1 = parse_rolefile(source)
        rf2 = parse_rolefile(str(rf1))
        assert str(rf1) == str(rf2)

    def test_golf_club_quorum(self):
        """The section 3.4.5 example parses: two distinct recommenders."""
        rf = parse_rolefile(
            "Recommend(p, e) <- Candidate(p) <| Member(e)\n"
            "Member(p) <- Recommend(p, e1)* & Recommend(p, e2)* : e1 != e2\n"
        )
        member = rf.statements_for("Member")[0]
        assert len(member.conditions) == 2
        assert member.constraint.op == "!="
