"""Crash-restart recovery (boot epochs, section 2's ``(host, id,
boot_time)`` identity).

A restarted service is a *new party*: everything a peer learned from the
dead epoch is of unverifiable currency.  These tests drive
``SimLinkage.crash`` / ``SimLinkage.restart`` and check the recovery
protocol end to end: epoch detection via heartbeats, surrogates masked
Unknown until the network resubscribe replies arrive, and revocations
swallowed by a crash re-learned on resync.
"""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.credentials import RecordState
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import RevokedError
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""


def make_world(delay=0.25):
    sim = Simulator()
    net = Network(sim, seed=9, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    user = HostOS("ely").create_domain()
    return sim, net, linkage, login, files, user


def test_service_restart_bumps_epoch_and_flushes_caches():
    sim, net, linkage, login, files, user = make_world()
    assert login.boot_epoch == 1
    fired = []
    login.on_restart(lambda: fired.append(login.boot_epoch))
    assert login.restart() == 2
    assert login.restart() == 3
    assert fired == [2, 3]


def test_issuer_crash_restart_epoch_detected_by_peer():
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sender, monitor = linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    files.validate(reader)
    linkage.crash(login)
    sim.run_until(15.0)
    # silence -> suspect -> fail closed
    assert monitor.suspect
    with pytest.raises(RevokedError) as err:
        files.validate(reader)
    assert err.value.uncertain
    linkage.restart(login)
    sim.run_until(20.0)
    assert login.boot_epoch == 2
    assert monitor.sender_epoch == 2
    assert monitor.stats.epoch_changes == 1
    assert not monitor.suspect
    files.validate(reader)  # recovered to issuer truth


def test_surrogates_stay_unknown_until_resync_replies_arrive():
    """The acceptance criterion verbatim: after the peer detects the new
    epoch, surrogates minted under the dead epoch read Unknown — and keep
    reading Unknown until the *network* resubscribe replies land; a
    direct in-process truth read must not short-circuit the window."""
    sim, net, linkage, login, files, user = make_world(delay=0.25)
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(cert,))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    linkage.crash(login)
    sim.run_until(15.0)
    t0 = sim.now
    linkage.restart(login)
    # first new-epoch heartbeat lands at t0+0.25: epoch change fires,
    # surrogates masked, resubscribe goes out.  The reply needs a full
    # round trip (t0+0.75); in between the surrogate must read Unknown
    # even though the restore callback has already run.
    sim.run_until(t0 + 0.5)
    surrogate = files.credentials.externals_of("Login")[0]
    assert surrogate.state is RecordState.UNKNOWN
    with pytest.raises(RevokedError) as err:
        files.validate(reader)
    assert err.value.uncertain
    sim.run_until(t0 + 2.0)
    assert surrogate.state is RecordState.TRUE
    files.validate(reader)


def test_revocation_swallowed_by_consumer_crash_is_relearned_on_restart():
    """Files crashes; Login revokes while it is down (the Modified event
    dies on the floor of a down node); after restart the resync re-read
    must surface the revocation as definitive FALSE, not resurrect the
    grant from the stale surrogate."""
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(cert,))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    files.validate(reader)
    linkage.crash(files)
    login.exit_role(cert)  # notification sent into the void
    sim.run_until(10.0)
    dropped = net.stats.dropped_while_down
    assert dropped >= 1
    linkage.restart(files)
    assert files.boot_epoch == 2
    sim.run_until(20.0)
    with pytest.raises(RevokedError) as err:
        files.validate(reader)
    assert not err.value.uncertain  # truth re-learned, not mere suspicion


def test_crash_discards_queued_wire_traffic():
    """Volatile state: payloads batched but not yet flushed at crash time
    are lost with the process, never delivered by a ghost."""
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sim.run()
    # queue a revocation notification but crash before any flush deadline
    record = login.credentials.get(cert.crr)
    assert record.subscribers
    login.exit_role(cert)
    linkage.crash(login)
    sim.run_until(sim.now + 30.0)
    # the surrogate still believes TRUE: the notification died with the
    # process (this is exactly why restart must mask + resync)
    surrogate = files.credentials.externals_of("Login")[0]
    assert surrogate.state is RecordState.TRUE


def test_double_crash_restart_cycles_are_stable():
    sim, net, linkage, login, files, user = make_world()
    cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(cert,))
    sender, monitor = linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    for expected_epoch in (2, 3):
        linkage.crash(login)
        sim.run_until(sim.now + 10.0)
        linkage.restart(login)
        sim.run_until(sim.now + 10.0)
        assert login.boot_epoch == expected_epoch
        assert monitor.sender_epoch == expected_epoch
        files.validate(reader)
    assert monitor.stats.epoch_changes == 2
