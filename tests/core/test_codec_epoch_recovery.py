"""Intern-table epoch safety across crash-restarts (codec satellite).

The codec interns symbols per directed link, versioned by the sender's
boot epoch.  These tests drive the dangerous interactions end to end
over ``SimLinkage``:

* the PR-7 heartbeat data-loss path now carries *encoded* frames: a lost
  batch's retained bytes are nack-retransmitted and must decode against
  the same link table;
* after a crash-restart bumps the boot epoch, the sender renegotiates
  every symbol and receivers reject frames stamped with the dead epoch —
  including a delayed duplicate of a pre-crash retransmission, which is
  exactly the frame whose symbol ids would otherwise resolve against the
  wrong table.
"""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.credentials import RecordState
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

LOGIN_ADDR = "oasis:Login"
FILES_ADDR = "oasis:Files"


def make_world(delay=0.05):
    sim = Simulator()
    net = Network(sim, seed=11, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    host = HostOS("ely")
    alice, bob = host.create_domain(), host.create_domain()
    cert_a = login.enter_role(alice.client_id, "LoggedOn", ("a", "ely"))
    cert_b = login.enter_role(bob.client_id, "LoggedOn", ("b", "ely"))
    files.enter_role(alice.client_id, "Reader", credentials=(cert_a,))
    files.enter_role(bob.client_id, "Reader", credentials=(cert_b,))
    return sim, net, linkage, login, files, cert_a, cert_b


def surrogate_states(files):
    return {
        record.external_ref: record.state
        for record in files.credentials.externals_of("Login")
    }


def test_nack_retransmitted_batch_is_encoded_and_decodes():
    """The PR-7 data-loss fix over encoded frames: a revocation batch
    dropped by a link flap is retransmitted from the retained *encoded*
    bytes and still lands the revocation."""
    sim, net, linkage, login, files, cert_a, cert_b = make_world()
    sender, monitor = linkage.monitor(login, files, period=1.0, grace=4.0)
    sim.run_until(3.0)
    assert RecordState.FALSE not in surrogate_states(files).values()
    net.set_link_state(LOGIN_ADDR, FILES_ADDR, False)
    login.exit_role(cert_a)  # batch flushed into the dead link
    sim.run_until(3.5)
    net.set_link_state(LOGIN_ADDR, FILES_ADDR, True)
    sim.run_until(8.0)
    # the gap was nacked and the retained encoded frame re-delivered
    assert sender.stats.resends >= 1
    assert surrogate_states(files)[cert_a.crr] is RecordState.FALSE
    assert surrogate_states(files)[cert_b.crr] is RecordState.TRUE
    assert net.stats.dropped_decode == 0
    assert net.unaccounted() == 0


def test_restart_renegotiates_symbols_under_new_epoch():
    sim, net, linkage, login, files, cert_a, cert_b = make_world()
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(3.0)
    encoder = net.codec._encoders[(LOGIN_ADDR, FILES_ADDR)]
    assert encoder.epoch == 1
    assert "Login" in encoder.ids  # interned under epoch 1
    linkage.crash(login)
    sim.run_until(8.0)
    linkage.restart(login)
    sim.run_until(15.0)
    assert login.boot_epoch == 2
    # the old table is gone; "Login" was re-defined from scratch
    assert encoder.epoch == 2
    assert "Login" in encoder.ids
    # new-epoch traffic decodes: the resync replies resolved the
    # surrogates from Unknown back to issuer truth
    assert surrogate_states(files)[cert_a.crr] is RecordState.TRUE
    assert net.codec.stats.unknown_symbol_rejected == 0


def test_delayed_pre_crash_retransmission_rejected_after_restart():
    """The epoch-safety acceptance scenario end to end: a pre-crash
    batch is lost, nack-retransmitted, and a *duplicate* of the
    retransmission is delayed past the issuer's crash-restart.  When it
    finally arrives the receiver has already seen epoch-2 frames, so the
    codec rejects the stale frame outright — its symbol ids belong to
    the dead table and must not resolve against the new one."""
    sim, net, linkage, login, files, cert_a, cert_b = make_world()
    sender, monitor = linkage.monitor(login, files, period=1.0, grace=2.0)

    def duplicate_retransmissions(message, delay):
        # every heartbeat-payload retransmission gets a ghost copy that
        # arrives 25 virtual seconds later — long after the restart
        if message.kind == "heartbeat-payload" and message.source == LOGIN_ADDR:
            return [delay, 25.0]
        return [delay]

    net.set_fault_injector(duplicate_retransmissions)
    sim.run_until(3.0)
    # lose a revocation batch to a link flap, then let the nack machinery
    # retransmit it (the duplicate is now in flight for t~29)
    net.set_link_state(LOGIN_ADDR, FILES_ADDR, False)
    login.exit_role(cert_a)
    sim.run_until(3.5)
    net.set_link_state(LOGIN_ADDR, FILES_ADDR, True)
    sim.run_until(7.0)
    assert sender.stats.resends >= 1
    assert surrogate_states(files)[cert_a.crr] is RecordState.FALSE
    # crash and restart the issuer: boot epoch 2, symbols renegotiated
    linkage.crash(login)
    sim.run_until(12.0)
    linkage.restart(login)
    sim.run_until(20.0)
    assert monitor.sender_epoch == 2
    states = surrogate_states(files)
    assert states[cert_a.crr] is RecordState.FALSE
    assert states[cert_b.crr] is RecordState.TRUE
    rejected_before = net.codec.stats.stale_epoch_rejected
    dropped_before = net.stats.dropped_decode
    # the ghost copy of the pre-crash retransmission lands around t=29
    sim.run_until(35.0)
    assert net.codec.stats.stale_epoch_rejected > rejected_before
    assert net.stats.dropped_decode > dropped_before
    # the stale frame changed nothing and the accounting still balances
    assert surrogate_states(files) == states
    assert net.unaccounted() == 0


def test_replayed_stale_frame_never_decodes_against_new_table():
    """Belt-and-braces variant without fault-injector timing: capture a
    real pre-crash frame (bare symbol refs included), replay it after the
    restart, and watch the codec refuse it."""
    sim, net, linkage, login, files, cert_a, cert_b = make_world()
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(3.0)
    # a pre-crash frame on the warm link: "Login" travels as a bare ref
    stale = net.codec.encode(
        LOGIN_ADDR,
        FILES_ADDR,
        "heartbeat-payload",
        {
            "seq": 999,
            "horizon": sim.now,
            "epoch": login.boot_epoch,
            "payload": {
                "items": [
                    {
                        "kind": "modified",
                        "payload": {
                            "issuer": "Login",
                            "ref": cert_b.crr,
                            "state": "false",
                            "stamp": None,
                        },
                    }
                ]
            },
        },
    )
    assert stale.intern_hits >= 1  # it really does lean on the epoch-1 table
    linkage.crash(login)
    sim.run_until(8.0)
    linkage.restart(login)
    sim.run_until(15.0)
    assert surrogate_states(files)[cert_b.crr] is RecordState.TRUE
    net.send(LOGIN_ADDR, FILES_ADDR, "heartbeat-payload", stale)
    sim.run_until(16.0)
    assert net.codec.stats.stale_epoch_rejected >= 1
    # the bogus revocation inside the stale frame never applied
    assert surrogate_states(files)[cert_b.crr] is RecordState.TRUE
    assert net.unaccounted() == 0
