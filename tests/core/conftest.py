"""Shared fixtures: the Login + Conference world used throughout ch. 3-4."""

import pytest

from repro.core import GroupService, HostOS, OasisService, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.core.types import ObjectType
from repro.runtime.clock import ManualClock

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

CONF_RDL = """
import Login.userid
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
"""


class World:
    """A small universe: a Login service, a Conference service, two hosts."""

    def __init__(self):
        self.clock = ManualClock()
        self.registry = ServiceRegistry()
        self.linkage = LocalLinkage()
        self.login = OasisService(
            "Login", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login.export_type(ObjectType("Login.userid"), "userid")
        self.login.add_rolefile("main", LOGIN_RDL)
        self.groups = GroupService()
        self.groups.create_group("staff", {self.uid("jmb"), self.uid("dm")})
        self.conf = OasisService(
            "Conf",
            registry=self.registry,
            linkage=self.linkage,
            clock=self.clock,
            groups=self.groups,
        )
        self.conf.add_rolefile("main", CONF_RDL)
        self.host = HostOS("ely")
        self.jmb = self.host.create_domain()
        self.dm = self.host.create_domain()
        self.jmb_login = self.login.enter_role(
            self.jmb.client_id, "LoggedOn", ("jmb", "ely")
        )
        self.dm_login = self.login.enter_role(
            self.dm.client_id, "LoggedOn", ("dm", "ely")
        )

    def uid(self, name):
        return self.login.parsename("userid", name)


@pytest.fixture
def world():
    return World()
