"""Tests for RDL type inference and constraint evaluation."""

import pytest

from repro.core.rdl.constraints import (
    ConstraintContext,
    FuncDep,
    GroupDep,
    UnboundVariable,
    eval_constraint,
    eval_term,
)
from repro.core.rdl.ast import Variable
from repro.core.rdl.parser import parse_rolefile
from repro.core.rdl.typecheck import TypeChecker, coerce_literal
from repro.core.types import INTEGER, STRING, ObjectRef, ObjectType, SetType, TypeTable
from repro.errors import RDLTypeError


def check(source, resolver=None, types=None, function_types=None):
    rf = parse_rolefile(source)
    checker = TypeChecker(
        rf, types=types, resolver=resolver, function_types=function_types
    )
    return checker.check()


class TestTypeInference:
    def test_declared_types(self):
        sigs = check("def A(x, y)  x: integer  y: string\nA(x, y) <- ")
        assert sigs["A"] == [INTEGER, STRING]

    def test_inferred_from_external_role(self):
        def resolver(service, role):
            if (service, role) == ("Login", "LoggedOn"):
                return [STRING, STRING]
            return None

        sigs = check("Member(u) <- Login.LoggedOn(u, h)", resolver=resolver)
        assert sigs["Member"] == [STRING]

    def test_inferred_from_literal(self):
        sigs = check('A(x) <- \nB <- A(5)\nC <- A(x) : x == 1\n')
        assert sigs["A"] == [INTEGER]

    def test_inferred_transitively(self):
        def resolver(service, role):
            return [INTEGER] if role == "Ext" else None

        sigs = check("Mid(x) <- S.Ext(x)\nTop(x) <- Mid(x)", resolver=resolver)
        assert sigs["Top"] == [INTEGER]
        assert sigs["Mid"] == [INTEGER]

    def test_inference_failure_reported(self):
        with pytest.raises(RDLTypeError, match="could not infer"):
            check("A(x) <- ")

    def test_conflicting_types_rejected(self):
        def resolver(service, role):
            return {"I": [INTEGER], "S": [STRING]}.get(role)

        with pytest.raises(RDLTypeError):
            check("A(x) <- Svc.I(x) & Svc.S(x)", resolver=resolver)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RDLTypeError):
            check("def A(x)  x: integer\nB <- A(1, 2)")

    def test_external_arity_mismatch_rejected(self):
        def resolver(service, role):
            return [INTEGER, INTEGER]

        with pytest.raises(RDLTypeError):
            check("A <- S.Two(x)", resolver=resolver)

    def test_function_type_hint_used(self):
        sigs = check(
            'def LoggedOn(u)  u: string\n'
            'LoggedOn(u) <- \n'
            'UseFile(r) <- LoggedOn(u) : r = unixacl("rjh21=rwx", u)\n',
            function_types={"unixacl": SetType("rwx")},
        )
        assert sigs["UseFile"] == [SetType("rwx")]

    def test_binding_from_function_type(self):
        sigs = check(
            'def LoggedOn(u)  u: string\n'
            'LoggedOn(u) <- \n'
            'UseFile(r) <- LoggedOn(u) : r = unixacl("acl", u)\n',
            function_types={"unixacl": SetType("rwx")},
        )
        assert sigs["UseFile"] == [SetType("rwx")]

    def test_redundant_declaration_can_be_omitted(self):
        """Section 3.2.1: fully inferable declarations may be omitted."""
        def resolver(service, role):
            return [STRING, STRING] if role == "LoggedOn" else None

        sigs = check("Member(u) <- Login.LoggedOn(u, h)", resolver=resolver)
        assert sigs["Member"] == [STRING]


class TestCoercion:
    def test_string_to_object_ref(self):
        uid = ObjectType("Login.userid")
        assert coerce_literal("jmb", uid) == ObjectRef("Login.userid", b"jmb")

    def test_set_validated(self):
        assert coerce_literal(frozenset("rw"), SetType("rwx")) == frozenset("rw")
        with pytest.raises(RDLTypeError):
            coerce_literal(frozenset("z"), SetType("rwx"))

    def test_int_passthrough(self):
        assert coerce_literal(3, INTEGER) == 3


class TestConstraintEvaluation:
    def parse_constraint(self, text):
        rf = parse_rolefile(f"A <- B : {text}")
        return rf.statements[0].constraint

    def eval(self, text, env=None, groups=None, functions=None, watchable=None):
        ctx = ConstraintContext(
            env=env or {},
            group_lookup=(lambda p, g: p in groups.get(g, set())) if groups is not None else None,
            functions=functions or {},
            watchable=watchable or {},
        )
        result = eval_constraint(self.parse_constraint(text), ctx)
        return result, ctx

    def test_comparisons(self):
        assert self.eval("x == 3", {"x": 3})[0]
        assert not self.eval("x == 3", {"x": 4})[0]
        assert self.eval("x != y", {"x": 1, "y": 2})[0]
        assert self.eval("x < y", {"x": 1, "y": 2})[0]
        assert self.eval("x >= 1", {"x": 1})[0]

    def test_binding_equals(self):
        result, ctx = self.eval("x = 7", {})
        assert result
        assert ctx.env["x"] == 7

    def test_bound_equals_tests(self):
        assert self.eval("x = 7", {"x": 7})[0]
        assert not self.eval("x = 7", {"x": 8})[0]

    def test_group_test(self):
        groups = {"staff": {"dm"}}
        assert self.eval("u in staff", {"u": "dm"}, groups)[0]
        assert not self.eval("u in staff", {"u": "xx"}, groups)[0]

    def test_starred_group_records_dep(self):
        groups = {"staff": {"dm"}}
        result, ctx = self.eval("(u in staff)*", {"u": "dm"}, groups)
        assert result
        assert ctx.deps == [GroupDep("dm", "staff", negate=False)]

    def test_unstarred_group_records_nothing(self):
        groups = {"staff": {"dm"}}
        _, ctx = self.eval("u in staff", {"u": "dm"}, groups)
        assert ctx.deps == []

    def test_negated_star_group(self):
        groups = {"banned": set()}
        result, ctx = self.eval("not (u in banned)*", {"u": "dm"}, groups)
        assert result
        assert ctx.deps == [GroupDep("dm", "banned", negate=True)]

    def test_and_or_logic(self):
        groups = {"g": {"a"}}
        assert self.eval("x == 1 and u in g", {"x": 1, "u": "a"}, groups)[0]
        assert not self.eval("x == 1 and u in g", {"x": 2, "u": "a"}, groups)[0]
        assert self.eval("x == 2 or u in g", {"x": 1, "u": "a"}, groups)[0]

    def test_or_freezes_only_taken_branch(self):
        groups = {"g1": set(), "g2": {"a"}}
        _, ctx = self.eval("(u in g1 or u in g2)*", {"u": "a"}, groups)
        assert ctx.deps == [GroupDep("a", "g2", negate=False)]

    def test_function_call(self):
        result, ctx = self.eval(
            'r = unixacl("acl", u)',
            {"u": "rjh21"},
            functions={"unixacl": lambda acl, u: frozenset("rwx")},
        )
        assert result
        assert ctx.env["r"] == frozenset("rwx")

    def test_watchable_function_records_dep(self):
        def creator(doc):
            return "dm", 12345   # value, token

        result, ctx = self.eval(
            '(u = creator("DOC"))*', {}, watchable={"creator": creator}
        )
        assert result
        assert ctx.env["u"] == "dm"
        assert ctx.deps == [FuncDep("creator", 12345)]

    def test_unbound_variable_raises(self):
        with pytest.raises(UnboundVariable):
            self.eval("x == 3", {})

    def test_set_ordering_mixed_types_rejected(self):
        from repro.errors import RDLError
        with pytest.raises(RDLError):
            self.eval("x < y", {"x": frozenset("a"), "y": 3})

    def test_set_subset_comparison(self):
        assert self.eval("x <= y", {"x": frozenset("r"), "y": frozenset("rw")})[0]

    def test_eval_term_unknown_function(self):
        from repro.errors import RDLError
        ctx = ConstraintContext()
        with pytest.raises(RDLError):
            eval_term(
                parse_rolefile("A <- B : f(1) == 2").statements[0].constraint.left,
                ctx,
            )
