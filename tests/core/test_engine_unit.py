"""Direct unit tests for the role-entry engine (no service shell)."""

import pytest

from repro.core.engine import CertDep, Membership, RoleEntryEngine
from repro.core.rdl.parser import parse_rolefile
from repro.core.rdl.typecheck import TypeChecker
from repro.core.types import INTEGER, STRING
from repro.errors import EntryDenied


def make_engine(source, service="S", group_lookup=None, functions=None,
                external=None):
    rolefile = parse_rolefile(source)
    checker = TypeChecker(
        rolefile,
        resolver=lambda svc, role: (external or {}).get((svc, role)),
    )
    checker.check()

    def signatures(svc, role):
        if svc is None or svc == service:
            try:
                return checker.signature(role)
            except Exception:
                return None
        return (external or {}).get((svc, role))

    return RoleEntryEngine(
        rolefile, service, signatures,
        group_lookup=group_lookup, functions=functions,
    )


def membership(service, role, args, crr=1):
    return Membership(
        service=service, roles=frozenset({role}), args=args,
        deps=(CertDep(service, crr),),
    )


class TestMatching:
    def test_variable_shared_between_conditions(self):
        engine = make_engine("def A(x)  x: integer\ndef B(x)  x: integer\n"
                             "Both(x) <- A(x) & B(x)")
        result = engine.evaluate(
            "Both",
            credentials=[membership("S", "A", (1,)), membership("S", "B", (1,))],
        )
        assert result.membership.args == (1,)

    def test_variable_conflict_fails(self):
        engine = make_engine("def A(x)  x: integer\ndef B(x)  x: integer\n"
                             "Both(x) <- A(x) & B(x)")
        with pytest.raises(EntryDenied):
            engine.evaluate(
                "Both",
                credentials=[membership("S", "A", (1,)), membership("S", "B", (2,))],
            )

    def test_literal_condition_argument(self):
        engine = make_engine("def A(x)  x: integer\nSpecial <- A(42)")
        with pytest.raises(EntryDenied):
            engine.evaluate("Special", credentials=[membership("S", "A", (41,))])
        result = engine.evaluate("Special", credentials=[membership("S", "A", (42,))])
        assert result.membership.roles == frozenset({"Special"})

    def test_external_role_reference(self):
        engine = make_engine(
            "Member(u) <- Login.LoggedOn(u, h)",
            external={("Login", "LoggedOn"): [STRING, STRING]},
        )
        result = engine.evaluate(
            "Member", credentials=[membership("Login", "LoggedOn", ("dm", "ely"))]
        )
        assert result.membership.args == ("dm",)

    def test_wrong_service_not_matched(self):
        engine = make_engine(
            "Member(u) <- Login.LoggedOn(u, h)",
            external={("Login", "LoggedOn"): [STRING, STRING]},
        )
        with pytest.raises(EntryDenied):
            engine.evaluate(
                "Member",
                credentials=[membership("Imposter", "LoggedOn", ("dm", "ely"))],
            )

    def test_requested_args_wildcards(self):
        """None in the request is a wild card for *matching*; a bootstrap
        statement still needs every head variable bound somewhere."""
        engine = make_engine(
            "def A(x)  x: integer\ndef B(x, y)  x: integer  y: integer\n"
            "A(x) <- \nB(x, 5) <- A(x)"
        )
        a = engine.evaluate("A", (3,)).membership
        result = engine.evaluate(
            "B", (None, None),
            credentials=[membership("S", "A", a.args)],
        )
        assert result.membership.args == (3, 5)

    def test_starred_condition_contributes_deps(self):
        engine = make_engine("def A(x)  x: integer\nM(x) <- A(x)*")
        result = engine.evaluate("M", credentials=[membership("S", "A", (1,), crr=99)])
        assert CertDep("S", 99) in result.membership.deps

    def test_unstarred_condition_contributes_no_deps(self):
        engine = make_engine("def A(x)  x: integer\nM(x) <- A(x)")
        result = engine.evaluate("M", credentials=[membership("S", "A", (1,), crr=99)])
        assert result.membership.deps == ()

    def test_backtracking_across_three_conditions(self):
        engine = make_engine(
            "def R(e)  e: integer\n"
            "Q <- R(a)* & R(b)* & R(c)* : a != b and b != c and a != c"
        )
        creds = [membership("S", "R", (i,), crr=i) for i in (1, 1, 2, 3)]
        result = engine.evaluate("Q", credentials=creds)
        assert len(result.membership.deps) == 3

    def test_functions_in_head_arguments(self):
        engine = make_engine(
            "def A(x)  x: integer\ndef M(y)  y: integer\nM(double(x)) <- A(x)",
            functions={"double": lambda v: v * 2},
        )
        result = engine.evaluate("M", credentials=[membership("S", "A", (21,))])
        assert result.membership.args == (42,)

    def test_applied_statements_recorded(self):
        engine = make_engine(
            "def A(x)  x: integer\nMid(x) <- A(x)\nTop(x) <- Mid(x)"
        )
        result = engine.evaluate("Top", credentials=[membership("S", "A", (1,))])
        assert [s.head.name for s in result.applied] == ["Mid", "Top"]

    def test_group_lookup_used(self):
        engine = make_engine(
            "def A(x)  x: string\nM(x) <- A(x) : x in vips",
            group_lookup=lambda value, group: value == "dm" and group == "vips",
        )
        engine.evaluate("M", credentials=[membership("S", "A", ("dm",))])
        with pytest.raises(EntryDenied):
            engine.evaluate("M", credentials=[membership("S", "A", ("guest",))])
