"""Tests for distributed credential coherence (sections 4.9-4.10).

Covers the SimLinkage: Modified-event propagation over the simulated
network, heartbeat-driven Unknown marking, and recovery.
"""

import pytest

from repro.core import GroupService, HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import RevokedError
from repro.runtime.clock import SimClock
from repro.runtime.network import Link, Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""


def make_distributed_world(delay=0.01):
    sim = Simulator()
    net = Network(sim, seed=2, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    host = HostOS("ely")
    user = host.create_domain()
    return sim, net, linkage, login, files, user


def test_external_record_resolves_after_subscribe():
    sim, net, linkage, login, files, user = make_distributed_world()
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    # the issuer vouched for the credential at entry, so the certificate is
    # immediately usable even before the subscription reply lands
    files.validate(reader)
    sim.run()
    files.validate(reader)  # and stays valid once the reply arrives


def test_remote_revocation_propagates_with_network_delay():
    sim, net, linkage, login, files, user = make_distributed_world(delay=0.5)
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    sim.run()
    files.validate(reader)
    t0 = sim.now
    login.exit_role(login_cert)
    files.validate(reader)  # event still in flight: stale success
    sim.run()
    assert sim.now >= t0 + 0.5
    with pytest.raises(RevokedError):
        files.validate(reader)


def test_heartbeat_loss_fails_closed():
    """Section 4.10: a missed heartbeat marks external records Unknown;
    the consuming service must act as if revoked (uncertain)."""
    sim, net, linkage, login, files, user = make_distributed_world()
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    files.validate(reader)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(30.0)
    with pytest.raises(RevokedError) as err:
        files.validate(reader)
    assert err.value.uncertain


def test_heartbeat_restore_recovers_true_state():
    sim, net, linkage, login, files, user = make_distributed_world()
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(30.0)
    net.heal({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(60.0)
    files.validate(reader)  # state re-read on restore; still logged on


def test_revocation_during_partition_detected_on_heal():
    """The cert is revoked while the services cannot talk; after healing
    the consuming service learns the truth rather than resurrecting it."""
    sim, net, linkage, login, files, user = make_distributed_world()
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    login.exit_role(login_cert)
    sim.run_until(30.0)
    net.heal({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(60.0)
    with pytest.raises(RevokedError) as err:
        files.validate(reader)
    assert not err.value.uncertain  # definitively revoked, not just unknown


def test_reconnection_restores_true_states_for_all_surrogates():
    """Satellite: after a missed heartbeat marks surrogates Unknown, the
    re-read on reconnection restores every surviving record's true state
    in one cascade."""
    sim, net, linkage, login, files, user = make_distributed_world()
    host = HostOS("ely2")
    certs = []
    readers = []
    for i in range(5):
        domain = host.create_domain()
        cert = login.enter_role(domain.client_id, "LoggedOn", (f"u{i}", "ely"))
        readers.append(files.enter_role(domain.client_id, "Reader", credentials=(cert,)))
        certs.append(cert)
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    for reader in readers:
        files.validate(reader)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(30.0)
    for reader in readers:
        with pytest.raises(RevokedError) as err:
            files.validate(reader)
        assert err.value.uncertain  # fail closed, not revoked
    net.heal({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(60.0)
    for reader in readers:
        files.validate(reader)  # all true states restored


def test_mixed_fates_during_partition_resolved_on_heal():
    """Records revoked during the partition come back FALSE (definitive);
    untouched ones come back TRUE — in the same re-read batch."""
    sim, net, linkage, login, files, user = make_distributed_world()
    host = HostOS("ely3")
    pairs = []
    for i in range(4):
        domain = host.create_domain()
        cert = login.enter_role(domain.client_id, "LoggedOn", (f"v{i}", "ely"))
        reader = files.enter_role(domain.client_id, "Reader", credentials=(cert,))
        pairs.append((cert, reader))
    linkage.monitor(login, files, period=1.0, grace=2.0)
    sim.run_until(5.0)
    net.partition({"oasis:Login"}, {"oasis:Files"})
    login.exit_role(pairs[0][0])
    login.exit_role(pairs[2][0])
    sim.run_until(30.0)
    net.heal({"oasis:Login"}, {"oasis:Files"})
    sim.run_until(60.0)
    for index, (cert, reader) in enumerate(pairs):
        if index in (0, 2):
            with pytest.raises(RevokedError) as err:
                files.validate(reader)
            assert not err.value.uncertain  # truth learned, not suspicion
        else:
            files.validate(reader)


class TestWireEfficiency:
    """The batching/coalescing transport underneath SimLinkage."""

    def test_revocation_cascade_batches_into_few_messages(self):
        sim, net, linkage, login, files, user = make_distributed_world()
        host = HostOS("ely4")
        certs = []
        for i in range(50):
            domain = host.create_domain()
            cert = login.enter_role(domain.client_id, "LoggedOn", (f"w{i}", "ely"))
            files.enter_role(domain.client_id, "Reader", credentials=(cert,))
            certs.append(cert)
        sim.run()
        before = net.stats.messages_sent
        login.credentials.revoke_many([cert.crr for cert in certs])
        sim.run()
        on_wire = net.stats.messages_sent - before
        # 50 notifications to one destination: one batch envelope
        assert on_wire == 1
        assert net.stats.payloads_carried >= 50

    def test_state_flip_coalesces_to_final_state(self):
        """TRUE -> UNKNOWN -> FALSE inside one batch window crosses the
        wire once, carrying FALSE (last-state-wins, never the reverse)."""
        sim, net, linkage, login, files, user = make_distributed_world()
        login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
        reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
        sim.run()
        before = net.stats.messages_sent
        from repro.core.credentials import RecordState
        record = login.credentials.get(login_cert.crr)
        subscribers = set(record.subscribers)
        assert subscribers  # Files subscribed to the issuer's CRR
        linkage.publish(login, login_cert.crr, RecordState.UNKNOWN, subscribers)
        linkage.publish(login, login_cert.crr, RecordState.FALSE, subscribers)
        sim.run()
        assert net.stats.messages_sent - before == 1
        assert net.stats.coalesced >= 1
        with pytest.raises(RevokedError) as err:
            files.validate(reader)
        assert not err.value.uncertain

    def test_flush_deadline_bounds_revocation_latency(self):
        """Fail-closed: the final state is never delayed past the flush
        deadline — visibility within max_delay + link delay."""
        from repro.runtime.wire import WirePolicy

        sim = Simulator()
        net = Network(sim, seed=2, default_delay=0.001)
        clock = SimClock(sim)
        registry = ServiceRegistry()
        linkage = SimLinkage(net, policy=WirePolicy(max_batch=1000, max_delay=0.01))
        login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
        login.export_type(ObjectType("Login.userid"), "userid")
        login.add_rolefile("main", LOGIN_RDL)
        files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
        files.add_rolefile("main", FILES_RDL)
        user = HostOS("ely").create_domain()
        login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
        reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
        sim.run()
        t0 = sim.now
        login.exit_role(login_cert)
        sim.run()
        with pytest.raises(RevokedError):
            files.validate(reader)
        assert sim.now - t0 <= 0.01 + 0.001 + 1e-9

    def test_subscription_reply_is_not_held_for_a_batch(self):
        """The reply that resolves a fail-closed Unknown surrogate is
        urgent: it arrives after one link delay even under a policy with
        a long batch window."""
        from repro.core.credentials import RecordState
        from repro.runtime.wire import WirePolicy

        sim = Simulator()
        net = Network(sim, seed=2, default_delay=0.001)
        clock = SimClock(sim)
        registry = ServiceRegistry()
        linkage = SimLinkage(net, policy=WirePolicy(max_batch=1000, max_delay=5.0))
        login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
        login.export_type(ObjectType("Login.userid"), "userid")
        login.add_rolefile("main", LOGIN_RDL)
        files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
        files.add_rolefile("main", FILES_RDL)
        user = HostOS("ely").create_domain()
        login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
        files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
        sim.run_until(0.01)   # two link hops, far below the batch window
        surrogate = files.credentials.externals_of("Login")[0]
        assert surrogate.state is RecordState.TRUE


class TestGroupService:
    def test_lazy_materialisation(self):
        groups = GroupService()
        groups.create_group("g", {"a", "b"})
        assert groups.interesting_count() == 0
        groups.membership_record("a", "g")
        assert groups.interesting_count() == 1

    def test_record_tracks_changes(self):
        from repro.core.credentials import RecordState
        groups = GroupService()
        groups.create_group("g", {"a"})
        record = groups.membership_record("a", "g")
        assert record.state is RecordState.TRUE
        groups.remove_member("g", "a")
        assert record.state is RecordState.FALSE
        groups.add_member("g", "a")
        assert record.state is RecordState.TRUE

    def test_record_for_nonmember_starts_false(self):
        from repro.core.credentials import RecordState
        groups = GroupService()
        groups.create_group("g", set())
        record = groups.membership_record("x", "g")
        assert record.state is RecordState.FALSE

    def test_same_record_returned(self):
        groups = GroupService()
        groups.create_group("g", {"a"})
        assert groups.membership_record("a", "g") is groups.membership_record("a", "g")

    def test_members_listing(self):
        groups = GroupService()
        groups.create_group("g", {"a", "b"})
        assert groups.members("g") == {"a", "b"}
        assert groups.groups() == ["g"]


def test_lost_subscribe_is_retried_until_acknowledged():
    """A subscribe request eaten by the network must not orphan the
    surrogate: the subscriber retries on a timer until any Modified
    event for the ref proves the issuer knows about it (ISSUE 5)."""
    sim, net, linkage, login, files, user = make_distributed_world()
    login_cert = login.enter_role(user.client_id, "LoggedOn", ("dm", "ely"))
    # every subscribe from Files dies on the floor for a while
    net.set_link("oasis:Files", "oasis:Login", Link(loss_probability=1.0))
    reader = files.enter_role(user.client_id, "Reader", credentials=(login_cert,))
    sim.run_until(1.0)
    record = login.credentials.get(login_cert.crr)
    assert "Files" not in record.subscribers  # issuer is still unaware
    net.set_link("oasis:Files", "oasis:Login", Link())
    sim.run_until(10.0)
    assert linkage.subscribe_retries >= 1
    assert "Files" in login.credentials.get(login_cert.crr).subscribers
    # ...so the revocation propagates instead of leaving a stale grant
    login.exit_role(login_cert)
    sim.run_until(20.0)
    with pytest.raises(RevokedError):
        files.validate(reader)
