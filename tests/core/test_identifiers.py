"""Unit tests for client identifiers and VCIs (sections 2.7-2.8)."""

import pytest

from repro.core.identifiers import ClientId, HostOS
from repro.errors import OasisError


def test_client_id_unique_per_domain():
    host = HostOS("ely")
    a = host.create_domain()
    b = host.create_domain()
    assert a.client_id != b.client_id
    assert a.client_id.host == "ely"


def test_boot_time_keeps_ids_unique_forever():
    host = HostOS("ely")
    before = host.create_domain().client_id
    host.boot()
    after = host.create_domain().client_id
    assert before != after
    assert after.boot_time > before.boot_time


def test_boot_kills_existing_domains():
    host = HostOS("ely")
    domain = host.create_domain()
    host.boot()
    assert not domain.alive


def test_authenticate():
    host = HostOS("ely")
    domain = host.create_domain()
    assert host.authenticate(domain, domain.client_id)
    assert not host.authenticate(domain, ClientId("ely", 999, 1))


def test_authenticate_fails_after_exit():
    host = HostOS("ely")
    domain = host.create_domain()
    claimed = domain.client_id
    domain.exit()
    assert not host.authenticate(domain, claimed)


class TestVCIs:
    def test_new_vci_owned(self):
        host = HostOS("ely")
        domain = host.create_domain()
        vci = domain.new_vci()
        assert domain.may_use(vci)

    def test_other_domain_may_not_use(self):
        host = HostOS("ely")
        a = host.create_domain()
        b = host.create_domain()
        vci = a.new_vci()
        assert not b.may_use(vci)

    def test_explicit_delegation(self):
        host = HostOS("ely")
        a = host.create_domain()
        b = host.create_domain()
        vci = a.new_vci()
        a.delegate_vci(vci, b)
        assert b.may_use(vci)

    def test_cannot_delegate_unheld_vci(self):
        host = HostOS("ely")
        a = host.create_domain()
        b = host.create_domain()
        vci = b.new_vci()
        with pytest.raises(OasisError):
            a.delegate_vci(vci, b)

    def test_vci_meaningless_across_hosts(self):
        a = HostOS("ely").create_domain()
        b = HostOS("cam").create_domain()
        vci = a.new_vci()
        with pytest.raises(OasisError):
            a.delegate_vci(vci, b)

    def test_fork_passes_selected_vcis_only(self):
        """The login-process pattern of section 2.8.1: a child receives
        credentials for VCI x but cannot use VCI y, even if stolen."""
        host = HostOS("ely")
        parent = host.create_domain()
        vci_x = parent.new_vci()
        vci_y = parent.new_vci()
        child = parent.fork(pass_vcis={vci_x})
        assert child.may_use(vci_x)
        assert not child.may_use(vci_y)
        assert child.client_id != parent.client_id

    def test_exit_clears_vcis(self):
        host = HostOS("ely")
        domain = host.create_domain()
        vci = domain.new_vci()
        domain.exit()
        assert not domain.may_use(vci)
        with pytest.raises(OasisError):
            domain.new_vci()

    def test_exited_domain_cannot_fork(self):
        host = HostOS("ely")
        domain = host.create_domain()
        domain.exit()
        with pytest.raises(OasisError):
            domain.fork()

    def test_client_id_str(self):
        assert str(ClientId("ely", 3, 2)) == "ely/3@2"
