"""Tests for containers and accounting (sections 5.3.1 / 4.13)."""

import pytest

from repro.errors import StorageError
from repro.mssa.containers import ContainerRegistry
from repro.mssa.ids import FileId


@pytest.fixture
def registry():
    reg = ContainerRegistry("ffc")
    reg.create_container("home-dm", account="dm", quota_files=3, quota_bytes=100)
    reg.create_container("scratch", account="dept")
    return reg


def fid(n):
    return FileId("ffc", n)


class TestContainers:
    def test_create_and_list(self, registry):
        assert registry.containers() == ["home-dm", "scratch"]

    def test_duplicate_rejected(self, registry):
        with pytest.raises(StorageError):
            registry.create_container("scratch", account="x")

    def test_unknown_rejected(self, registry):
        with pytest.raises(StorageError):
            registry.container("nope")

    def test_file_quota(self, registry):
        for i in range(3):
            registry.add_file("home-dm", fid(i))
        with pytest.raises(StorageError, match="file quota"):
            registry.add_file("home-dm", fid(9))

    def test_byte_quota(self, registry):
        registry.add_file("home-dm", fid(1), size=80)
        with pytest.raises(StorageError, match="byte quota"):
            registry.add_file("home-dm", fid(2), size=30)

    def test_unquota_container_unbounded(self, registry):
        for i in range(100):
            registry.add_file("scratch", fid(i), size=1000)
        assert registry.container("scratch").bytes_used == 100_000

    def test_remove_releases_quota(self, registry):
        registry.add_file("home-dm", fid(1), size=80)
        registry.remove_file("home-dm", fid(1), size=80)
        registry.add_file("home-dm", fid(2), size=90)

    def test_resize_respects_quota(self, registry):
        registry.add_file("home-dm", fid(1), size=50)
        registry.resize_file("home-dm", 40)
        with pytest.raises(StorageError):
            registry.resize_file("home-dm", 40)
        registry.resize_file("home-dm", -60)
        assert registry.container("home-dm").bytes_used == 30


class TestAccounting:
    def test_operations_charged_to_container_account(self, registry):
        for _ in range(5):
            registry.charge_operation("home-dm")
        assert registry.bill("dm") == 5
        assert registry.bill("dept") == 0

    def test_certificate_account_overrides(self, registry):
        """Section 4.13: the account may come from the certificate."""
        registry.charge_operation("scratch", account="visiting-project")
        assert registry.bill("visiting-project") == 1
        assert registry.bill("dept") == 0

    def test_usage_report(self, registry):
        registry.add_file("home-dm", fid(1), size=10)
        registry.charge_operation("home-dm")
        report = registry.usage_report()
        assert report["home-dm"] == {
            "account": "dm", "files": 1, "bytes": 10, "operations": 1,
        }
