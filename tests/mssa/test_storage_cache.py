"""Regression tests for the storage fast path: the per-custode access-
decision cache, the remote-ACL surrogate store and their invalidation
sources (ISSUE 4).

The invariant under test everywhere: a cached decision may never outlive
the state it was derived from.  Every path that could stale a decision —
``modify_acl`` version bump, ``set_acl_of`` regroup, group-membership
change, credential-record revocation, a *remote* ``modify_acl`` arriving
as an event notification, a suspected link — must deny (or re-derive) on
the very next access, with no stale-grant window beyond one delivery.
"""

import pytest

from repro.core.credentials import RecordState
from repro.errors import AccessDenied, RevokedError
from repro.mssa.acl import Acl, AclEntry
from repro.mssa.bypass import BypassRoute
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.mssa.vac import IndexedFlatFileCustode


class TestDecisionCache:
    def test_warm_reads_hit_the_decision_cache(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        mssa.ffc.read(cert, fid)                       # prime
        validations_before = mssa.ffc.service.stats.validations
        hits_before = mssa.ffc.storage.decision_hits
        for _ in range(10):
            mssa.ffc.read(cert, fid)
        assert mssa.ffc.storage.decision_hits == hits_before + 10
        # the warm path never re-enters full validation
        assert mssa.ffc.service.stats.validations == validations_before

    def test_denied_operation_is_never_cached(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        for _ in range(3):
            with pytest.raises(AccessDenied):
                mssa.ffc.write(cert, fid, b"nope")
        assert mssa.ffc.storage.decision_hits == 0

    def test_modify_acl_kills_cached_decision(self, mssa):
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        fid = mssa.ffc.create(acl, b"x")
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, acl, jlogin)
        mssa.ffc.read(jcert, fid)                      # warm
        dclient, dlogin = mssa.login_user("dm")
        dmeta = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        mssa.ffc.modify_acl(dmeta, acl, Acl.parse("dm=+rwad", alphabet="rwad"))
        with pytest.raises(RevokedError):
            mssa.ffc.read(jcert, fid)                  # next access, not later
        assert mssa.ffc.storage.invalidated_by_record >= 1

    def test_modify_acl_invalidates_use_file_decisions(self, mssa):
        """A delegated UseFile certificate does not depend on the ACL
        version record, so its cached decision is pinned to the version
        instead — modify_acl must force it back onto the full path."""
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"),
                                  protecting_acl_id=meta)
        fid = mssa.ffc.create(acl, b"x")
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        deleg, _ = mssa.ffc.delegate_use_file(dcert, fid, frozenset("r"))
        sclient, slogin = mssa.login_user("student1")
        scert = mssa.ffc.accept_use_file(sclient, deleg, slogin)
        mssa.ffc.read(scert, fid)                      # warm the UseFile decision
        mssa.ffc.read(scert, fid)
        assert mssa.ffc.storage.decision_hits >= 1
        dmeta = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        mssa.ffc.modify_acl(dmeta, acl, Acl.parse("dm=+rwad", alphabet="rwad"))
        assert mssa.ffc.storage.invalidated_by_acl_modify >= 1
        misses_before = mssa.ffc.storage.decision_misses
        mssa.ffc.read(scert, fid)                      # re-derived, not served stale
        assert mssa.ffc.storage.decision_misses == misses_before + 1

    def test_regroup_kills_cached_decision(self, mssa):
        acl_a = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        acl_b = mssa.ffc.create_acl(Acl.parse("jmb=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl_a, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl_a, login)
        mssa.ffc.read(cert, fid)                       # warm
        mssa.ffc.set_acl_of(cert, fid, acl_b)
        assert mssa.ffc.storage.invalidated_by_regroup >= 1
        with pytest.raises(AccessDenied):
            mssa.ffc.read(cert, fid)

    def test_group_membership_change_kills_cached_decision(self, mssa):
        root = mssa.login.parsename("userid", "root")
        mssa.ffc.add_admin(root)
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("root")
        cert = mssa.ffc.enter_use_acl(client, acl, login)   # via the admin statement
        mssa.ffc.write(cert, fid, b"warm")
        mssa.ffc.write(cert, fid, b"warm again")
        assert mssa.ffc.storage.decision_hits >= 1
        mssa.ffc.service.groups.remove_member("admins", root)
        with pytest.raises(RevokedError):
            mssa.ffc.write(cert, fid, b"stale")

    def test_revocation_kills_cached_decision(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        mssa.ffc.read(cert, fid)                       # warm
        mssa.ffc.service.exit_role(cert)
        with pytest.raises(RevokedError):
            mssa.ffc.read(cert, fid)

    def test_eviction_keeps_invalidation_indexes_clean(self, mssa):
        custode = mssa.make_custode(ByteSegmentCustode, "tiny",
                                    decision_cache_size=2)
        acl = custode.create_acl(Acl.parse("dm=+rw", alphabet="rw"))
        fids = [custode.create_segment(acl, b"x") for _ in range(6)]
        client, login = mssa.login_user("dm")
        cert = custode.enter_use_acl(client, acl, login)
        for fid in fids:
            custode.read_segment(cert, fid)
        assert custode.storage.decision_evictions >= 4
        # evicted keys must have left the secondary indexes too
        indexed = sum(len(keys) for keys in custode._decisions_by_fid.values())
        assert indexed == len(custode._decisions) <= 2
        # and the survivors still invalidate correctly
        custode.service.exit_role(cert)
        with pytest.raises(RevokedError):
            custode.read_segment(cert, fids[-1])


class TestRemoteAclSurrogates:
    def _remote_world(self, mssa):
        """An FFC file protected by an ACL stored on the BSC; dm may
        modify that ACL through its protecting meta-ACL."""
        meta = mssa.bsc.create_acl(
            Acl.parse("custode:ffc=+r dm=+rw", alphabet="rw"))
        remote_acl = mssa.bsc.create_acl(
            Acl.parse("dm=+rwad jmb=+r", alphabet="rwad"), protecting_acl_id=meta)
        fid = mssa.ffc.create(remote_acl, b"x")
        return meta, remote_acl, fid

    def test_repeated_checks_hit_the_surrogate_store(self, mssa):
        meta, remote_acl, fid = self._remote_world(mssa)
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, remote_acl, login)
        assert mssa.ffc.remote_acl_reads == 1
        for _ in range(5):
            mssa.ffc.enter_use_acl(client, remote_acl, login)
        assert mssa.ffc.remote_acl_reads == 1          # cold-path counter only
        assert mssa.ffc.storage.surrogate_hits >= 5

    def test_remote_modify_acl_reaches_surrogate_readers(self, mssa):
        """A remote modify_acl must deny existing certificate holders on
        their next access, via the Modified event on the version record —
        with the synchronous LocalLinkage there is no stale-grant window
        at all (one delivery under a delayed linkage)."""
        meta, remote_acl, fid = self._remote_world(mssa)
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, remote_acl, jlogin)
        mssa.ffc.read(jcert, fid)                      # warm decision + store
        dclient, dlogin = mssa.login_user("dm")
        dmeta = mssa.bsc.enter_use_acl(dclient, meta, dlogin)
        mssa.bsc.modify_acl(dmeta, remote_acl,
                            Acl.parse("dm=+rwad", alphabet="rwad"))
        with pytest.raises(RevokedError):
            mssa.ffc.read(jcert, fid)
        assert mssa.ffc.storage.surrogate_flushes >= 1
        # jmb re-applies against the new contents: one fresh remote read,
        # and the new ACL grants nothing
        reads_before = mssa.ffc.remote_acl_reads
        fresh = mssa.ffc.enter_use_acl(jclient, remote_acl, jlogin)
        assert mssa.ffc.remote_acl_reads == reads_before + 1
        with pytest.raises(AccessDenied):
            mssa.ffc.read(fresh, fid)

    def test_link_suspicion_flushes_store_and_fails_closed(self, mssa):
        meta, remote_acl, fid = self._remote_world(mssa)
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, remote_acl, login)
        mssa.ffc.read(cert, fid)                       # warm
        flushes_before = mssa.ffc.storage.surrogate_flushes
        mssa.ffc.service.credentials.mark_service_unknown("bsc")
        assert mssa.ffc.storage.surrogate_flushes == flushes_before + 1
        with pytest.raises(RevokedError) as exc:
            mssa.ffc.read(cert, fid)                   # fail closed, uncertain
        assert exc.value.uncertain


class TestChargingAfterAuthorisation:
    def test_denied_operations_are_not_billed(self, mssa):
        """Section 4.13 charges *authorised* operations: a denied request
        must not bill the file's container."""
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x", container="project-x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        mssa.ffc.read(cert, fid)
        charged = mssa.ffc.accounting.usage_report()["project-x"]["operations"]
        for _ in range(5):
            with pytest.raises(AccessDenied):
                mssa.ffc.write(cert, fid, b"nope")
        assert (mssa.ffc.accounting.usage_report()["project-x"]["operations"]
                == charged)

    def test_authorised_operations_still_billed_on_warm_path(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x", container="project-x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        for _ in range(4):
            mssa.ffc.read(cert, fid)
        assert (mssa.ffc.accounting.usage_report()["project-x"]["operations"]
                >= 4)


class TestProtectedByIndex:
    def test_index_tracks_create_regroup_delete(self, mssa):
        acl_a = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        acl_b = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fids = [mssa.ffc.create(acl_a, b"x") for _ in range(4)]
        assert set(mssa.ffc.files_protected_by(acl_a)) == set(fids)
        assert mssa.ffc.files_protected_by(acl_b) == []
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl_a, login)
        mssa.ffc.set_acl_of(cert, fids[0], acl_b)
        assert set(mssa.ffc.files_protected_by(acl_a)) == set(fids[1:])
        assert mssa.ffc.files_protected_by(acl_b) == [fids[0]]
        mssa.ffc.delete(cert, fids[1])
        assert set(mssa.ffc.files_protected_by(acl_a)) == set(fids[2:])

    def test_index_includes_protected_acl_files(self, mssa):
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        assert mssa.ffc.files_protected_by(meta) == [acl]


class TestCompiledAclRegressions:
    def test_entry_normalises_rights_once(self):
        """The standalone regression for the micro-fix: construction-time
        normalisation, no per-call set rebuilding."""
        entry = AclEntry("@students", "rw", negative=True)
        assert isinstance(entry.rights, frozenset)
        assert entry.matches("bob", {"students"})
        assert entry.matches("bob", ["students", "staff"])
        assert not entry.matches("bob", set())
        assert not AclEntry("bob", frozenset("r")).matches("alice", set())

    def test_evaluate_is_memoised_per_user_and_groups(self):
        acl = Acl.parse("@students=-w *=+rw")
        first = acl.evaluate("bob", {"students"})
        assert first == frozenset("r")
        hits_before = acl.evaluations_memoised
        assert acl.evaluate("bob", {"students"}) is first   # served from memo
        assert acl.evaluations_memoised == hits_before + 1
        # different group sets are distinct decisions
        assert acl.evaluate("bob", set()) == frozenset("rw")
        assert acl.evaluate("bob", ["students"]) == frozenset("r")

    def test_compiled_buckets_preserve_entry_order(self):
        """The split user/group/star indexes must replay entries in their
        authored order — order carries the policy (section 5.4.4)."""
        acl = Acl.parse("bob=-w @students=+rw *=+d")
        assert acl.evaluate("bob", {"students"}) == frozenset("rd")
        acl2 = Acl.parse("@students=+rw bob=-w *=+d")
        assert acl2.evaluate("bob", {"students"}) == frozenset("rwd")


class TestBypassStats:
    def test_bypass_checks_counted(self, mssa):
        ifc = mssa.make_custode(IndexedFlatFileCustode, "ifc")
        ifc.wire_below(mssa.ffc, mssa.login_cert_for_custode(ifc))
        acl = ifc.create_acl(Acl.parse("dm=+rwadl", alphabet="rwadl"))
        fid = ifc.create(acl)
        client, login = mssa.login_user("dm")
        cert = ifc.enter_use_acl(client, acl, login)
        ifc.write_record(cert, fid, "k", b"hello")
        route = BypassRoute.resolve(ifc, "read")
        route.read(cert, fid)
        assert route.stats()["ifc"].bypass_checks == 1
        assert "ffc" in route.stats()                  # the whole stack reports


class TestEpochFlush:
    """A service restart is a new boot epoch: the decision cache and the
    remote-ACL surrogate store are process memory and must not survive
    it (ISSUE 5) — only the durable credential table does."""

    def test_restart_flushes_decision_cache(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        mssa.ffc.read(cert, fid)                       # prime
        mssa.ffc.read(cert, fid)
        assert mssa.ffc.storage.decision_hits >= 1
        assert len(mssa.ffc._decisions) >= 1
        epoch = mssa.ffc.service.restart()
        assert epoch == 2
        assert mssa.ffc.storage.epoch_flushes == 1
        assert len(mssa.ffc._decisions) == 0
        # the certificate itself is durable: the next read re-derives the
        # decision from scratch rather than serving the dead epoch's cache
        hits_before = mssa.ffc.storage.decision_hits
        misses_before = mssa.ffc.storage.decision_misses
        mssa.ffc.read(cert, fid)
        assert mssa.ffc.storage.decision_hits == hits_before
        assert mssa.ffc.storage.decision_misses == misses_before + 1

    def test_restart_flushes_remote_acl_store(self, mssa):
        meta = mssa.bsc.create_acl(
            Acl.parse("custode:ffc=+r dm=+rw", alphabet="rw"))
        remote_acl = mssa.bsc.create_acl(
            Acl.parse("dm=+rwad", alphabet="rwad"), protecting_acl_id=meta)
        fid = mssa.ffc.create(remote_acl, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, remote_acl, login)
        assert mssa.ffc.remote_acl_reads == 1
        assert len(mssa.ffc._remote_acls) == 1
        mssa.ffc.service.restart()
        assert len(mssa.ffc._remote_acls) == 0
        assert len(mssa.ffc._remote_by_surrogate) == 0
        # next entry goes back to the peer for a fresh copy
        mssa.ffc.enter_use_acl(client, remote_acl, login)
        assert mssa.ffc.remote_acl_reads == 2

    def test_no_stale_authorisation_across_epoch_change(self, mssa):
        """The sharpest form of the acceptance criterion: an ACL change
        concurrent with the restart must be honoured by the very first
        post-restart access."""
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        fid = mssa.ffc.create(acl, b"x")
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, acl, jlogin)
        mssa.ffc.read(jcert, fid)                      # warm decision
        dclient, dlogin = mssa.login_user("dm")
        dmeta = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        mssa.ffc.modify_acl(dmeta, acl, Acl.parse("dm=+rwad", alphabet="rwad"))
        mssa.ffc.service.restart()
        with pytest.raises(RevokedError):
            mssa.ffc.read(jcert, fid)


class TestGracefulDegradation:
    """The degradation tier (ISSUE 6): while the issuer is merely
    *suspected* (records UNKNOWN, not FALSE), a previously-proven grant
    keeps being served from the decision cache within an explicit
    staleness bound — never beyond it, and a known revocation is always
    denied."""

    def _world(self, mssa, max_staleness=5.0):
        from repro.mssa.custode import DegradationPolicy

        custode = mssa.make_custode(
            ByteSegmentCustode,
            "bsc-degraded",
            degradation=DegradationPolicy(max_staleness=max_staleness),
        )
        acl = custode.create_acl(Acl.parse("dm=+rw", alphabet="rw"))
        fid = custode.create_segment(acl, b"payload")
        client, login = mssa.login_user("dm")
        cert = custode.enter_use_acl(client, acl, login)
        assert custode.read_segment(cert, fid) == b"payload"   # prime the cache
        return custode, cert, fid, login

    def test_degraded_serve_within_staleness_bound(self, mssa):
        custode, cert, fid, _login = self._world(mssa, max_staleness=5.0)
        custode.service.credentials.mark_service_unknown("Login")
        mssa.clock.advance(2.0)
        assert custode.read_segment(cert, fid) == b"payload"
        assert custode.storage.degraded_hits == 1
        assert 0.0 < custode.storage.degraded_max_staleness <= 5.0

    def test_degraded_serve_refused_beyond_bound(self, mssa):
        custode, cert, fid, _login = self._world(mssa, max_staleness=5.0)
        custode.service.credentials.mark_service_unknown("Login")
        mssa.clock.advance(5.1)
        with pytest.raises(RevokedError) as exc:
            custode.read_segment(cert, fid)
        assert exc.value.uncertain
        assert custode.storage.degraded_hits == 0
        assert custode.storage.degraded_expired == 1
        # the expired decision is gone: a later in-bound moment cannot
        # resurrect it
        assert custode.storage.degraded_max_staleness == 0.0

    def test_known_revocation_denied_despite_degradation(self, mssa):
        """FALSE is authoritative: degradation extends suspicion windows,
        never revocations."""
        custode, cert, fid, login = self._world(mssa, max_staleness=1e9)
        mssa.login.credentials.revoke(login.crr)
        with pytest.raises(RevokedError):
            custode.read_segment(cert, fid)
        assert custode.storage.degraded_hits == 0

    def test_revocation_mid_window_is_honoured(self, mssa):
        """A revocation that resolves the suspicion (UNKNOWN -> FALSE)
        closes the degradation window immediately."""
        custode, cert, fid, login = self._world(mssa, max_staleness=1e9)
        custode.service.credentials.mark_service_unknown("Login")
        assert custode.read_segment(cert, fid) == b"payload"   # degraded serve
        mssa.login.credentials.revoke(login.crr)   # LocalLinkage: synchronous
        with pytest.raises(RevokedError):
            custode.read_segment(cert, fid)

    def test_restore_to_true_resumes_normal_service(self, mssa):
        custode, cert, fid, _login = self._world(mssa, max_staleness=5.0)
        custode.service.credentials.mark_service_unknown("Login")
        assert custode.read_segment(cert, fid) == b"payload"
        restored = [
            (record.ref, RecordState.TRUE)
            for record in custode.service.credentials.externals_of("Login")
        ]
        custode.service.credentials.set_states(restored)
        degraded_before = custode.storage.degraded_hits
        mssa.clock.advance(100.0)   # well past the bound: must not matter
        assert custode.read_segment(cert, fid) == b"payload"
        assert custode.storage.degraded_hits == degraded_before

    def test_without_policy_unknown_fails_closed_immediately(self, mssa):
        custode = mssa.make_custode(ByteSegmentCustode, "bsc-strict")
        acl = custode.create_acl(Acl.parse("dm=+rw", alphabet="rw"))
        fid = custode.create_segment(acl, b"payload")
        client, login = mssa.login_user("dm")
        cert = custode.enter_use_acl(client, acl, login)
        custode.read_segment(cert, fid)
        custode.service.credentials.mark_service_unknown("Login")
        with pytest.raises(RevokedError) as exc:
            custode.read_segment(cert, fid)
        assert exc.value.uncertain
        assert custode.storage.degraded_hits == 0

    def test_restart_clears_degradation_stamps(self, mssa):
        custode, cert, fid, _login = self._world(mssa, max_staleness=1e9)
        custode.service.credentials.mark_service_unknown("Login")
        assert custode.read_segment(cert, fid) == b"payload"
        assert custode._unknown_since
        custode.service.restart()
        assert not custode._unknown_since
        # post-restart the window cannot be dated: fail closed, not serve
        with pytest.raises(RevokedError):
            custode.read_segment(cert, fid)
