"""Tests for accounting integrated into custodes (sections 5.3.1, 4.13)."""

import pytest

from repro.errors import StorageError
from repro.mssa.acl import Acl


def test_files_accounted_into_containers(mssa):
    acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
    mssa.ffc.create(acl, b"abc", container="project-x")
    mssa.ffc.create(acl, b"defg", container="project-x")
    report = mssa.ffc.accounting.usage_report()
    assert report["project-x"]["files"] == 2


def test_operations_charged(mssa):
    acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
    fid = mssa.ffc.create(acl, b"x", container="project-x")
    client, login = mssa.login_user("dm")
    cert = mssa.ffc.enter_use_acl(client, acl, login)
    for _ in range(3):
        mssa.ffc.read(cert, fid)
    assert mssa.ffc.accounting.usage_report()["project-x"]["operations"] >= 3
    assert mssa.ffc.accounting.bill("system") >= 3


def test_quota_enforced_on_create(mssa):
    mssa.ffc.accounting.create_container("tiny", account="dm", quota_files=1)
    acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
    mssa.ffc.create(acl, b"first", container="tiny")
    with pytest.raises(StorageError, match="file quota"):
        mssa.ffc.create(acl, b"second", container="tiny")


def test_container_listing_via_custode(mssa):
    acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
    fid = mssa.ffc.create(acl, b"x", container="proj")
    assert fid in mssa.ffc.files_in("proj")
    assert "proj" in mssa.ffc.accounting.containers()
