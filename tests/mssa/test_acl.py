"""Tests for the ACL format and the G/P evaluation algorithm (5.4.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.mssa.acl import Acl, AclEntry, unixacl


class TestGPAlgorithm:
    def test_positive_entry_grants(self):
        acl = Acl.parse("bob=+rw")
        assert acl.evaluate("bob") == frozenset("rw")
        assert acl.evaluate("alice") == frozenset()

    def test_negative_entry_restricts_later_grants(self):
        """The paper's motivating case: 'Students may not have write
        access' is different from 'students may have only read access'."""
        acl = Acl.parse("@students=-w *=+rw")
        assert acl.evaluate("bob", {"students"}) == frozenset("r")
        assert acl.evaluate("staffer") == frozenset("rw")

    def test_negative_entry_does_not_claw_back_earlier_grant(self):
        """Section 5.4.4: a negative entry is ``P <- P - R`` *only* — it
        bars later grants but an earlier grant stands (entry order is the
        policy)."""
        acl = Acl.parse("*=+rw @students=-w")
        assert acl.evaluate("bob", {"students"}) == frozenset("rw")
        # a later member of students gains nothing new from a later grant
        acl2 = Acl.parse("@students=-w *=+rw")
        assert acl2.evaluate("bob", {"students"}) == frozenset("r")

    def test_order_matters(self):
        """Grant-then-restrict vs restrict-then-grant are distinct
        policies under the ordered G/P algorithm."""
        grant_first = Acl.parse("bob=+w bob=-w")
        deny_first = Acl.parse("bob=-w bob=+w")
        assert grant_first.evaluate("bob") == frozenset("w")   # grant stands
        assert deny_first.evaluate("bob") == frozenset()       # grant barred
        # a later grant of a *different* right still works
        acl = Acl.parse("bob=-w bob=+r")
        assert acl.evaluate("bob") == frozenset("r")

    def test_restriction_only_narrows_possible_set(self):
        # restrict, grant the restricted right plus another: only the
        # other survives, and a second restriction cannot remove it
        acl = Acl.parse("@students=-w @students=+rw @students=-r")
        assert acl.evaluate("bob", {"students"}) == frozenset("r")

    def test_paper_conflict_example(self):
        """'Bob(Read/Write), student(Read)' with Bob a student: ordered
        entries make the semantics explicit, no 'difficult cases'."""
        acl = Acl.parse("bob=+rw @students=+r")
        assert acl.evaluate("bob", {"students"}) == frozenset("rw")
        assert acl.evaluate("carol", {"students"}) == frozenset("r")

    def test_wildcard_subject(self):
        acl = Acl.parse("*=+r")
        assert acl.evaluate("anyone") == frozenset("r")

    def test_group_subject(self):
        acl = Acl.parse("@staff=+rwx")
        assert acl.evaluate("dm", {"staff"}) == frozenset("rwx")
        assert acl.evaluate("dm", set()) == frozenset()

    def test_empty_acl_grants_nothing(self):
        assert Acl([]).evaluate("anyone") == frozenset()

    def test_render_parse_roundtrip(self):
        acl = Acl.parse("bob=+rw @students=-w *=+r")
        again = Acl.parse(acl.render())
        assert again == acl

    def test_rights_outside_alphabet_rejected(self):
        with pytest.raises(StorageError):
            Acl.parse("bob=+z", alphabet="rw")

    def test_malformed_entry_rejected(self):
        with pytest.raises(StorageError):
            Acl.parse("bob+rw")
        with pytest.raises(StorageError):
            Acl.parse("bob=rw")   # missing +/-

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["bob", "@students", "*"]),
                st.sets(st.sampled_from("rwxad")),
                st.booleans(),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_first_mention_of_each_right_decides(self, raw_entries):
        """INVARIANT equivalent to the G/P fold, derived per right: a
        right is granted iff the *first* matching entry naming it is
        positive — an earlier restriction removes it from P forever, and
        a later restriction cannot claw back an earlier grant."""
        entries = [AclEntry(s, frozenset(r), n) for s, r, n in raw_entries]
        acl = Acl(entries)
        granted = acl.evaluate("bob", {"students"})
        for right in "rwxad":
            mentions = [
                e
                for e in entries
                if e.matches("bob", {"students"}) and right in e.rights
            ]
            expected = bool(mentions) and not mentions[0].negative
            assert (right in granted) == expected

    def test_hashable_consistent_with_eq(self):
        a = Acl.parse("bob=+rw @students=-w")
        b = Acl.parse("bob=+rw @students=-w")
        c = Acl.parse("bob=+r")
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2
        assert {a: "policy"}[b] == "policy"

    def test_hash_uses_normalised_entry_set(self):
        """ISSUE 7 satellite: the hash covers the *normalised* frozenset
        of entries, not the authored order.  Two ACLs that differ only in
        entry order are distinct policies (order is the G/P semantics, so
        ``__eq__`` keeps them apart) but must land in the same hash
        bucket, so shard-local surrogate maps probe one chain instead of
        missing a logically-identical key."""
        ordered = Acl.parse("bob=+rw @students=-w *=+r")
        permuted = Acl.parse("*=+r bob=+rw @students=-w")
        assert ordered != permuted              # order is policy
        assert hash(ordered) == hash(permuted)  # same normalised set
        # both usable alongside each other in one mapping
        table = {ordered: "grant-first", permuted: "restrict-late"}
        assert table[ordered] == "grant-first"
        assert table[permuted] == "restrict-late"


class TestUnixAcl:
    def test_most_closely_binding(self):
        """Section 3.3.3: the entry directly naming the user wins."""
        text = "rjh21=rwx staff=r-x other=r--"
        assert unixacl(text, "rjh21") == frozenset("rwx")
        assert unixacl(text, "dm", {"staff"}) == frozenset("rx")
        assert unixacl(text, "guest") == frozenset("r")

    def test_unknown_user_no_other(self):
        assert unixacl("rjh21=rwx", "guest") == frozenset()

    def test_malformed(self):
        with pytest.raises(StorageError):
            unixacl("garbage", "x")
