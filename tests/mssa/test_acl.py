"""Tests for the ACL format and the G/P evaluation algorithm (5.4.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.mssa.acl import Acl, AclEntry, unixacl


class TestGPAlgorithm:
    def test_positive_entry_grants(self):
        acl = Acl.parse("bob=+rw")
        assert acl.evaluate("bob") == frozenset("rw")
        assert acl.evaluate("alice") == frozenset()

    def test_negative_entry_restricts_later_grants(self):
        """The paper's motivating case: 'Students may not have write
        access' is different from 'students may have only read access'."""
        acl = Acl.parse("@students=-w *=+rw")
        assert acl.evaluate("bob", {"students"}) == frozenset("r")
        assert acl.evaluate("staffer") == frozenset("rw")

    def test_negative_entry_removes_earlier_grant(self):
        acl = Acl.parse("*=+rw @students=-w")
        # P loses 'w' and G loses 'w' too: earlier grants are clipped
        assert acl.evaluate("bob", {"students"}) == frozenset("r")

    def test_order_matters(self):
        grant_first = Acl.parse("bob=+w bob=-w")
        deny_first = Acl.parse("bob=-w bob=+w")
        assert grant_first.evaluate("bob") == frozenset()
        assert deny_first.evaluate("bob") == frozenset()
        # but a later grant of a *different* right still works
        acl = Acl.parse("bob=-w bob=+r")
        assert acl.evaluate("bob") == frozenset("r")

    def test_paper_conflict_example(self):
        """'Bob(Read/Write), student(Read)' with Bob a student: ordered
        entries make the semantics explicit, no 'difficult cases'."""
        acl = Acl.parse("bob=+rw @students=+r")
        assert acl.evaluate("bob", {"students"}) == frozenset("rw")
        assert acl.evaluate("carol", {"students"}) == frozenset("r")

    def test_wildcard_subject(self):
        acl = Acl.parse("*=+r")
        assert acl.evaluate("anyone") == frozenset("r")

    def test_group_subject(self):
        acl = Acl.parse("@staff=+rwx")
        assert acl.evaluate("dm", {"staff"}) == frozenset("rwx")
        assert acl.evaluate("dm", set()) == frozenset()

    def test_empty_acl_grants_nothing(self):
        assert Acl([]).evaluate("anyone") == frozenset()

    def test_render_parse_roundtrip(self):
        acl = Acl.parse("bob=+rw @students=-w *=+r")
        again = Acl.parse(acl.render())
        assert again == acl

    def test_rights_outside_alphabet_rejected(self):
        with pytest.raises(StorageError):
            Acl.parse("bob=+z", alphabet="rw")

    def test_malformed_entry_rejected(self):
        with pytest.raises(StorageError):
            Acl.parse("bob+rw")
        with pytest.raises(StorageError):
            Acl.parse("bob=rw")   # missing +/-

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["bob", "@students", "*"]),
                st.sets(st.sampled_from("rwxad")),
                st.booleans(),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_granted_never_exceeds_possible(self, raw_entries):
        """INVARIANT: G ⊆ P at every step, i.e. a negative entry is
        final for the rights it names (no later grant resurrects them)."""
        entries = [AclEntry(s, frozenset(r), n) for s, r, n in raw_entries]
        acl = Acl(entries)
        granted = acl.evaluate("bob", {"students"})
        # recompute the possible set at the end
        possible = set("rwxad")
        for entry in entries:
            if entry.matches("bob", {"students"}) and entry.negative:
                possible -= set(entry.rights)
        assert granted <= possible


class TestUnixAcl:
    def test_most_closely_binding(self):
        """Section 3.3.3: the entry directly naming the user wins."""
        text = "rjh21=rwx staff=r-x other=r--"
        assert unixacl(text, "rjh21") == frozenset("rwx")
        assert unixacl(text, "dm", {"staff"}) == frozenset("rx")
        assert unixacl(text, "guest") == frozenset("r")

    def test_unknown_user_no_other(self):
        assert unixacl("rjh21=rwx", "guest") == frozenset()

    def test_malformed(self):
        with pytest.raises(StorageError):
            unixacl("garbage", "x")
