"""Integration tests for custodes and shared ACLs (chapter 5)."""

import pytest

from repro.errors import (
    AccessDenied,
    PlacementError,
    RevokedError,
    StorageError,
)
from repro.mssa.acl import Acl
from repro.mssa.bypass import BypassRoute
from repro.mssa.continuous import ContinuousMediaCustode
from repro.mssa.ids import FileId
from repro.mssa.structured import StructuredFileCustode
from repro.mssa.vac import BankAccountCustode, IndexedFlatFileCustode


def test_file_id_roundtrip():
    fid = FileId("ffc", 42)
    assert FileId.parse(str(fid)) == fid
    with pytest.raises(StorageError):
        FileId.parse("garbage")


class TestSharedAcls:
    def test_use_acl_certificate_grants_access(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"hello")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        assert mssa.ffc.read(cert, fid) == b"hello"
        mssa.ffc.write(cert, fid, b"world")
        assert mssa.ffc.read(cert, fid) == b"world"

    def test_one_acl_protects_many_files(self, mssa):
        """Fig 5.2(b): files are logically grouped; one certificate
        covers them all."""
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fids = [mssa.ffc.create(acl, bytes([i])) for i in range(10)]
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        for i, fid in enumerate(fids):
            assert mssa.ffc.read(cert, fid) == bytes([i])
        assert len(mssa.ffc.files_protected_by(acl)) == 10

    def test_rights_limited_by_acl(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"data")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        with pytest.raises(AccessDenied):
            mssa.ffc.write(cert, fid, b"nope")

    def test_unlisted_user_denied_entry(self, mssa):
        from repro.errors import EntryDenied, RevokedError
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        client, login = mssa.login_user("student1")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        # entry succeeds but with an empty rights set: no operation works
        fid = mssa.ffc.create(acl, b"x")
        with pytest.raises(AccessDenied):
            mssa.ffc.read(cert, fid)

    def test_group_entries(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("@staff=+rw", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("jmb")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        assert mssa.ffc.read(cert, fid) == b"x"

    def test_wrong_acl_certificate_rejected(self, mssa):
        acl_a = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        acl_b = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl_b, b"x")
        client, login = mssa.login_user("dm")
        cert_a = mssa.ffc.enter_use_acl(client, acl_a, login)
        with pytest.raises(AccessDenied, match="governed by"):
            mssa.ffc.read(cert_a, fid)

    def test_regroup_file_under_other_acl(self, mssa):
        acl_a = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        acl_b = mssa.ffc.create_acl(Acl.parse("jmb=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl_a, b"x")
        client, login = mssa.login_user("dm")
        cert = mssa.ffc.enter_use_acl(client, acl_a, login)
        mssa.ffc.set_acl_of(cert, fid, acl_b)
        with pytest.raises(AccessDenied):
            mssa.ffc.read(cert, fid)   # dm's old cert is for the old group
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, acl_b, jlogin)
        assert mssa.ffc.read(jcert, fid) == b"x"

    def test_admin_statement_grants_full_rights(self, mssa):
        mssa.ffc.add_admin(mssa.login.parsename("userid", "root"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        client, login = mssa.login_user("root")
        cert = mssa.ffc.enter_use_acl(client, acl, login)
        mssa.ffc.write(cert, fid, b"admin was here")


class TestVolatileAcls:
    def test_acl_modification_revokes_certificates(self, mssa):
        """Section 5.5.2: certificates issued against the old ACL version
        are revoked through the per-ACL credential record."""
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        fid = mssa.ffc.create(acl, b"x")
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, acl, jlogin)
        assert mssa.ffc.read(jcert, fid) == b"x"
        # dm edits the ACL to remove jmb
        dclient, dlogin = mssa.login_user("dm")
        dmeta_cert = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        mssa.ffc.modify_acl(dmeta_cert, acl, Acl.parse("dm=+rwad", alphabet="rwad"))
        with pytest.raises(RevokedError):
            mssa.ffc.read(jcert, fid)
        # jmb cannot re-enter either
        fresh = mssa.ffc.enter_use_acl(jclient, acl, jlogin)
        with pytest.raises(AccessDenied):
            mssa.ffc.read(fresh, fid)

    def test_client_refreshes_transparently(self, mssa):
        """Non-fatal revocation: still-entitled clients re-apply."""
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        fid = mssa.ffc.create(acl, b"x")
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        dmeta = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        mssa.ffc.modify_acl(dmeta, acl, Acl.parse("dm=+rwad", alphabet="rwad"))
        with pytest.raises(RevokedError):
            mssa.ffc.read(dcert, fid)
        refreshed = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        assert mssa.ffc.read(refreshed, fid) == b"x"


class TestMetaAccessControl:
    def test_acl_read_requires_protecting_acl_rights(self, mssa):
        meta = mssa.ffc.create_acl(Acl.parse("dm=+rw", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        jclient, jlogin = mssa.login_user("jmb")
        jcert = mssa.ffc.enter_use_acl(jclient, meta, jlogin)
        with pytest.raises(AccessDenied):
            mssa.ffc.read_acl(jcert, acl)
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        assert mssa.ffc.read_acl(dcert, acl).render() == "jmb=+r"

    def test_modify_requires_write_on_protecting_acl(self, mssa):
        meta = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        acl = mssa.ffc.create_acl(Acl.parse("jmb=+r", alphabet="rwad"),
                                  protecting_acl_id=meta)
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, meta, dlogin)
        with pytest.raises(AccessDenied):
            mssa.ffc.modify_acl(dcert, acl, Acl.parse("dm=+r", alphabet="rwad"))

    def test_placement_constraint_enforced(self, mssa):
        """Section 5.4.2: the ACL protecting an ACL must be local."""
        remote_acl = mssa.bsc.create_acl(Acl.parse("dm=+rw", alphabet="rw"))
        with pytest.raises(PlacementError):
            mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"),
                                protecting_acl_id=remote_acl)

    def test_remote_acl_for_ordinary_file_is_fine(self, mssa):
        """Ordinary files may be protected by remote ACLs — only the
        meta-level is constrained (fig 5.5)."""
        meta = mssa.bsc.create_acl(Acl.parse("custode:ffc=+r", alphabet="rw"))
        # the remote ACL lives on the BSC but governs FFC files, so it is
        # authored in the FFC's rights alphabet
        remote_acl = mssa.bsc.create_acl(
            Acl.parse("dm=+rwad", alphabet="rwad"), protecting_acl_id=meta
        )
        fid = mssa.ffc.create_file(b"x", remote_acl)
        client, login = mssa.login_user("dm")
        before = mssa.ffc.remote_acl_reads
        cert = mssa.ffc.enter_use_acl(client, remote_acl, login)
        assert mssa.ffc.remote_acl_reads == before + 1   # exactly one remote call


class TestDelegation:
    def test_use_file_delegation(self, mssa):
        """Section 5.4.3: a UseAcl holder delegates single-file access."""
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"secret")
        other = mssa.ffc.create(acl, b"other")
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        deleg, revoc = mssa.ffc.delegate_use_file(dcert, fid, frozenset("r"))
        sclient, slogin = mssa.login_user("student1")
        scert = mssa.ffc.accept_use_file(sclient, deleg, slogin)
        assert mssa.ffc.read(scert, fid) == b"secret"
        with pytest.raises(AccessDenied):
            mssa.ffc.read(scert, other)      # file-specific
        with pytest.raises(AccessDenied):
            mssa.ffc.write(scert, fid, b"")  # rights-limited

    def test_delegated_rights_must_be_subset(self, mssa):
        from repro.errors import EntryDenied
        acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        deleg, _ = mssa.ffc.delegate_use_file(dcert, fid, frozenset("rw"))
        sclient, slogin = mssa.login_user("student1")
        with pytest.raises(EntryDenied):
            mssa.ffc.accept_use_file(sclient, deleg, slogin)

    def test_revocation_certificate(self, mssa):
        acl = mssa.ffc.create_acl(Acl.parse("dm=+rwad", alphabet="rwad"))
        fid = mssa.ffc.create(acl, b"x")
        dclient, dlogin = mssa.login_user("dm")
        dcert = mssa.ffc.enter_use_acl(dclient, acl, dlogin)
        deleg, revoc = mssa.ffc.delegate_use_file(dcert, fid, frozenset("r"))
        sclient, slogin = mssa.login_user("student1")
        scert = mssa.ffc.accept_use_file(sclient, deleg, slogin)
        mssa.ffc.service.revoke(revoc)
        with pytest.raises(RevokedError):
            mssa.ffc.read(scert, fid)


class TestTypedCustodes:
    def test_structured_files_and_compound_documents(self, mssa):
        sfc = mssa.make_custode(StructuredFileCustode, "sfc")
        acl = sfc.create_acl(Acl.parse("dm=+rw", alphabet="rw"))
        client, login = mssa.login_user("dm")
        cert = sfc.enter_use_acl(client, acl, login)
        doc = sfc.create_node(acl, {"title": "thesis"})
        chapter = sfc.create_node(acl, {"title": "ch1"})
        sfc.add_ref(cert, doc, chapter)
        # a cross-custode reference (compound document)
        ffc_acl = mssa.ffc.create_acl(Acl.parse("dm=+r", alphabet="rwad"))
        figure = mssa.ffc.create(ffc_acl, b"png")
        sfc.add_ref(cert, doc, figure)
        assert sfc.get_field(cert, doc, "title") == "thesis"
        assert sfc.refs(cert, doc) == [chapter, figure]
        assert figure in sfc.transitive_refs(cert, doc)

    def test_continuous_media_play_record_rights(self, mssa):
        cmc = mssa.make_custode(ContinuousMediaCustode, "cmc")
        acl_play = cmc.create_acl(Acl.parse("dm=+p jmb=+pc", alphabet="pc"))
        stream = cmc.create_stream(acl_play)
        jclient, jlogin = mssa.login_user("jmb")
        jcert = cmc.enter_use_acl(jclient, acl_play, jlogin)
        cmc.record(jcert, stream, [b"f1", b"f2", b"f3"])
        dclient, dlogin = mssa.login_user("dm")
        dcert = cmc.enter_use_acl(dclient, acl_play, dlogin)
        assert cmc.play(dcert, stream, 1) == [b"f2", b"f3"]
        with pytest.raises(AccessDenied):
            cmc.record(dcert, stream, [b"f4"])   # dm may only play

    def test_indexed_ffc_lookup(self, mssa):
        ifc = mssa.make_custode(IndexedFlatFileCustode, "ifc")
        ifc.wire_below(mssa.ffc, mssa.login_cert_for_custode(ifc))
        acl = ifc.create_acl(Acl.parse("dm=+rwadl", alphabet="rwadl"))
        fid = ifc.create(acl)
        client, login = mssa.login_user("dm")
        cert = ifc.enter_use_acl(client, acl, login)
        ifc.write_record(cert, fid, "alpha", b"AAAA")
        ifc.write_record(cert, fid, "beta", b"BB")
        assert ifc.lookup(cert, fid, "alpha") == b"AAAA"
        assert ifc.lookup(cert, fid, "beta") == b"BB"
        assert ifc.keys(cert, fid) == ["alpha", "beta"]
        assert ifc.read(cert, fid) == b"AAAABB"

    def test_bank_account(self, mssa):
        bank = mssa.make_custode(BankAccountCustode, "bank")
        bank.wire_below(mssa.ffc, mssa.login_cert_for_custode(bank))
        acl = bank.create_acl(Acl.parse("dm=+dwq jmb=+d", alphabet="dwq"))
        account = bank.open_account(acl)
        dclient, dlogin = mssa.login_user("dm")
        dcert = bank.enter_use_acl(dclient, acl, dlogin)
        assert bank.deposit(dcert, account, 100) == 100
        assert bank.withdraw(dcert, account, 30) == 70
        assert bank.balance(dcert, account) == 70
        jclient, jlogin = mssa.login_user("jmb")
        jcert = bank.enter_use_acl(jclient, acl, jlogin)
        bank.deposit(jcert, account, 5)
        with pytest.raises(AccessDenied):
            bank.withdraw(jcert, account, 1)   # jmb may only deposit
        with pytest.raises(AccessDenied):
            bank.withdraw(dcert, account, 10_000)  # insufficient funds


class TestBypassing:
    def make_stack(self, mssa):
        ifc = mssa.make_custode(IndexedFlatFileCustode, "ifc")
        ifc.wire_below(mssa.ffc, mssa.login_cert_for_custode(ifc))
        acl = ifc.create_acl(Acl.parse("dm=+rwadl", alphabet="rwadl"))
        fid = ifc.create(acl)
        client, login = mssa.login_user("dm")
        cert = ifc.enter_use_acl(client, acl, login)
        ifc.write_record(cert, fid, "k", b"hello")
        return ifc, acl, fid, cert

    def test_bypassed_read_returns_same_data(self, mssa):
        ifc, acl, fid, cert = self.make_stack(mssa)
        route = BypassRoute.resolve(ifc, "read")
        assert route.bottom is mssa.ffc
        assert route.read(cert, fid) == ifc.read(cert, fid)

    def test_bypass_skips_the_vac(self, mssa):
        ifc, acl, fid, cert = self.make_stack(mssa)
        route = BypassRoute.resolve(ifc, "read")
        before = ifc.ops
        route.read(cert, fid)
        assert ifc.ops == before          # the VAC took no part
        assert mssa.ffc.bypassed_ops == 1

    def test_bypass_validates_via_callback(self, mssa):
        ifc, acl, fid, cert = self.make_stack(mssa)
        route = BypassRoute.resolve(ifc, "read")
        before = ifc.service.stats.validations
        route.read(cert, fid)
        assert ifc.service.stats.validations == before + 1  # the callback

    def test_bypass_respects_revocation(self, mssa):
        ifc, acl, fid, cert = self.make_stack(mssa)
        route = BypassRoute.resolve(ifc, "read")
        ifc.service.exit_role(cert)
        with pytest.raises(RevokedError):
            route.read(cert, fid)

    def test_bypass_respects_rights(self, mssa):
        ifc, acl, fid, _ = self.make_stack(mssa)
        client, login = mssa.login_user("student1")
        # issue a certificate with no rights at all
        weak = ifc.enter_use_acl(client, acl, login)
        route = BypassRoute.resolve(ifc, "read")
        with pytest.raises(AccessDenied):
            route.read(weak, fid)

    def test_specialised_op_not_bypassable(self, mssa):
        from repro.errors import MisuseError
        ifc, acl, fid, cert = self.make_stack(mssa)
        with pytest.raises(MisuseError):
            BypassRoute.resolve(ifc, "lookup")
