"""Fixtures: a Login world plus wired custode stacks."""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.core.types import ObjectType
from repro.mssa.acl import Acl
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.mssa.flat_file import FlatFileCustode
from repro.runtime.clock import ManualClock

USER_GROUPS = {
    "dm": {"staff"},
    "jmb": {"staff"},
    "student1": {"students"},
}


class MssaWorld:
    def __init__(self):
        self.clock = ManualClock()
        self.registry = ServiceRegistry()
        self.linkage = LocalLinkage()
        self.login = OasisService(
            "Login", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login.export_type(ObjectType("Login.userid"), "userid")
        self.login.add_rolefile(
            "main", "def LoggedOn(u, h)  u: userid  h: string\nLoggedOn(u, h) <- "
        )
        self.host = HostOS("ws1")
        self._domains = {}
        self.bsc = self.make_custode(ByteSegmentCustode, "bsc")
        self.ffc = self.make_custode(FlatFileCustode, "ffc")
        self.ffc.wire_below(self.bsc, self.login_cert_for_custode(self.ffc))

    def make_custode(self, cls, name, **kwargs):
        return cls(
            name,
            registry=self.registry,
            linkage=self.linkage,
            clock=self.clock,
            user_groups=lambda u: USER_GROUPS.get(u, set()),
            **kwargs,
        )

    def login_user(self, user):
        domain = self._domains.get(user)
        if domain is None:
            domain = self.host.create_domain()
            self._domains[user] = domain
        cert = self.login.enter_role(domain.client_id, "LoggedOn", (user, "ws1"))
        return domain.client_id, cert

    def login_cert_for_custode(self, custode):
        """Custodes are clients too: log their identity on."""
        return self.login.enter_role(
            custode.identity, "LoggedOn", (f"custode:{custode.name}", custode.identity.host)
        )


@pytest.fixture
def mssa():
    return MssaWorld()
