"""The grand tour: every subsystem of the reproduction in one scenario.

A university runs: a password service, a multi-level login, an MSSA
custode stack for storage, a badge site with composite event detection,
and ERDL-secured event delivery.  A visiting researcher gets delegated
access; their departure (logout) cascades through every layer.

This is the "secure interworking" the title promises, demonstrated
end to end.
"""

import pytest

from repro.badge.hardware import Badge, BadgeWorld
from repro.badge.intersite import SiteDirectory
from repro.badge.site import Site
from repro.core import HostOS, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.errors import AccessDenied, EntryDenied, RevokedError
from repro.events.composite.detector import CompositeEventDetector
from repro.events.model import Event, WILDCARD, template
from repro.mssa.acl import Acl
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.mssa.flat_file import FlatFileCustode
from repro.runtime.clock import SimClock
from repro.runtime.simulator import Simulator
from repro.security.admission import SecureEventBroker
from repro.security.erdl import parse_erdl
from repro.services.login import LoginService
from repro.services.meeting import MeetingService
from repro.services.password import PasswordService


class University:
    def __init__(self):
        self.sim = Simulator()
        self.clock = SimClock(self.sim)
        self.registry = ServiceRegistry()
        self.linkage = LocalLinkage()

        # authentication stack
        self.pw = PasswordService(registry=self.registry, linkage=self.linkage,
                                  clock=self.clock)
        self.login = LoginService(registry=self.registry, linkage=self.linkage,
                                  clock=self.clock)
        self.login.add_secure_host("lab-console")
        self.pw.set_password("rjh21", "thesis!")
        self.pw.set_password("visitor", "hello")

        # storage
        self.bsc = ByteSegmentCustode("bsc", registry=self.registry,
                                      linkage=self.linkage, clock=self.clock,
                                      login_service="Login", login_role="Login")
        self.ffc = FlatFileCustode("ffc", registry=self.registry,
                                   linkage=self.linkage, clock=self.clock,
                                   login_service="Login", login_role="Login")
        ffc_login = self.login.login(
            self.ffc.identity,
            self.pw.authenticate(self.ffc.identity, *self._custode_creds("ffc")),
        )
        self.ffc.wire_below(self.bsc, ffc_login)

        # a meeting
        self.meeting = MeetingService(
            "Colloquium", chair_user="rjh21",
            staff={self.pw.parsename("userid", "rjh21")},
            registry=self.registry, linkage=self.linkage, clock=self.clock,
        )

        # badges
        self.directory = SiteDirectory()
        self.site = Site("lab", self.directory, clock=self.clock, simulator=self.sim)
        self.world = BadgeWorld(self.sim)
        for room in ("T14", "T15"):
            self.world.add_room(room, "lab")
            self.site.add_sensor(f"sensor-{room}", room)
        self.site.attach_hardware(self.world)

        self.host = HostOS("lab-console")

    def _custode_creds(self, name):
        self.pw.set_password(f"custode:{name}", f"{name}-secret")
        return f"custode:{name}", f"{name}-secret"

    def log_in(self, user, password):
        domain = self.host.create_domain()
        passwd = self.pw.authenticate(domain.client_id, user, password)
        return domain.client_id, self.login.login(domain.client_id, passwd)


@pytest.fixture
def uni():
    return University()


def test_grand_tour(uni):
    # --- the resident researcher logs in at the secure console ------------
    rjh, rjh_login = uni.log_in("rjh21", "thesis!")
    assert uni.login.level_of(rjh_login) == 3

    # --- stores thesis chapters under a shared ACL -------------------------
    acl = uni.ffc.create_acl(Acl.parse("rjh21=+rwad", alphabet="rwad"))
    thesis = uni.ffc.create(acl, b"Chapter 1: Naming")
    rjh_files = uni.ffc.enter_use_acl(rjh, acl, rjh_login)
    assert uni.ffc.read(rjh_files, thesis) == b"Chapter 1: Naming"

    # --- chairs the colloquium and invites a visitor -----------------------
    chair = uni.meeting.join_as_chair(rjh, rjh_login)
    visitor, visitor_login = uni.log_in("visitor", "hello")
    invitation, _ = uni.meeting.invite(
        uni.meeting.enter_roles(rjh, ["Member"], credentials=(rjh_login,))
        if False else chair_member(uni, rjh, rjh_login, chair)
    )
    visitor_member = uni.meeting.accept_invitation(visitor, invitation, visitor_login)
    uni.meeting.validate(visitor_member)

    # --- delegates read access to one chapter ------------------------------
    delegation, revocation = uni.ffc.delegate_use_file(
        rjh_files, thesis, frozenset("r")
    )
    visitor_file = uni.ffc.accept_use_file(visitor, delegation, visitor_login)
    assert uni.ffc.read(visitor_file, thesis) == b"Chapter 1: Naming"
    with pytest.raises(AccessDenied):
        uni.ffc.write(visitor_file, thesis, b"edits")

    # --- badge monitoring with a composite event ---------------------------
    uni.world.add_badge(Badge("badge-rjh", "lab"))
    uni.site.register_home_badge("badge-rjh", "rjh21")
    detector = CompositeEventDetector(clock=uni.clock)
    detector.connect(uni.site.master.broker)
    entries = []
    detector.watch(
        '$Seen("badge-rjh", s1); Seen("badge-rjh", s2) - Seen("badge-rjh", s1)',
        callback=lambda t, env: entries.append(env["s2"]),
    )

    def beat():
        uni.site.heartbeat()
        uni.sim.schedule(1.0, beat)

    uni.sim.schedule(0.5, beat)
    uni.world.move_at(1.0, "badge-rjh", "T14")
    uni.world.move_at(2.0, "badge-rjh", "T15")
    uni.sim.run_until(6.0)
    assert entries == ["sensor-T15"]

    # --- sightings are delivered under ERDL policy -------------------------
    policy = parse_erdl(
        "allow Login(l, u, h) : Seen(b, s) : owns(u, b)",
        predicates={"owns": lambda u, b: (getattr(u, "identity", b"") == b"rjh21"
                                          and b == "badge-rjh")},
    )
    secure = SecureEventBroker("secure-badges", uni.login, policy)
    rjh_events = []
    session = secure.establish_session(
        lambda e, h: rjh_events.append(e) if e else None, rjh_login
    )
    secure.register(session, template("Seen", WILDCARD, WILDCARD))
    secure.signal(Event("Seen", ("badge-rjh", "sensor-T15")))
    secure.signal(Event("Seen", ("badge-other", "sensor-T15")))
    assert [e.args[0] for e in rjh_events] == ["badge-rjh"]

    # --- the visitor leaves: logout cascades everywhere --------------------
    uni.login.logout(visitor_login)
    with pytest.raises(RevokedError):
        uni.meeting.validate(visitor_member)       # meeting membership gone
    with pytest.raises(RevokedError):
        uni.ffc.read(visitor_file, thesis)         # file access gone

    # --- and the resident's world still works ------------------------------
    uni.meeting.validate(chair)
    assert uni.ffc.read(rjh_files, thesis) == b"Chapter 1: Naming"
    uni.login.validate(rjh_login)


def chair_member(uni, rjh, rjh_login, chair):
    """The chair also joins as a member so they can invite (any member
    may invite; the Chair role alone is not a Member)."""
    return uni.meeting.join(rjh, rjh_login)


def test_departure_cascade_reaches_secure_broker(uni):
    """Logging out also tears down ERDL event sessions."""
    rjh, rjh_login = uni.log_in("rjh21", "thesis!")
    policy = parse_erdl("allow Login(l, u, h) : Seen(b, s)")
    secure = SecureEventBroker("sb", uni.login, policy)
    got = []
    session = secure.establish_session(
        lambda e, h: got.append(e) if e else None, rjh_login
    )
    secure.register(session, template("Seen", WILDCARD, WILDCARD))
    secure.signal(Event("Seen", ("b", "s")))
    uni.login.logout(rjh_login)
    secure.signal(Event("Seen", ("b", "s")))
    assert len(got) == 1
    assert not session.open
