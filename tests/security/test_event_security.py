"""Tests for event security (chapter 7): ERDL, admission control,
notification filtering and remote-policy proxies, using the badge-system
policies of section 7.5."""

import pytest

from repro.core import HostOS, OasisService
from repro.errors import AccessDenied, RevokedError
from repro.events.model import Event, Var, WILDCARD, template
from repro.security.admission import SecureEventBroker
from repro.security.erdl import parse_erdl
from repro.security.proxy import PolicyProxy

# the local policy of section 7.5.1/7.5.2, rendered in our ERDL syntax:
# - administrators see every sighting;
# - a logged-on user sees sightings of their *own* badge;
# - visitors see nothing.
BADGE_POLICY = """
allow Admin(u) : Seen(b, s)
allow LoggedOn(u) : Seen(b, s) : owns(u, b)
deny  Visitor(u) : Seen(b, s)
allow LoggedOn(u) : MovedSite(b, o, n) : owns(u, b)
"""

BADGE_OWNERS = {"rjh21": "badge-rjh", "jmb": "badge-jmb"}


def owns(user, badge):
    return BADGE_OWNERS.get(user) == badge


@pytest.fixture
def world():
    oasis = OasisService("BadgeSec")
    oasis.add_rolefile("main", """
def Admin(u)  u: string
def LoggedOn(u)  u: string
def Visitor(u)  u: string
Admin(u) <-  : u == "root"
LoggedOn(u) <-
Visitor(u) <-
""")
    policy = parse_erdl(BADGE_POLICY, predicates={"owns": owns})
    broker = SecureEventBroker("badges", oasis, policy)
    host = HostOS("h")
    return oasis, broker, host


def collector():
    events = []

    def notify(event, horizon):
        if event is not None:
            events.append(event)

    return events, notify


class TestErdlParsing:
    def test_statements_parsed_in_order(self):
        policy = parse_erdl(BADGE_POLICY, predicates={"owns": owns})
        assert [s.allow for s in policy.statements] == [True, True, False, True]
        assert policy.statements[0].role == "Admin"
        assert policy.statements[1].conditions[0].op_or_name == "owns"

    def test_literal_role_params(self):
        policy = parse_erdl('allow Login(3, u) : Seen(b, s)')
        assert policy.statements[0].role_params[0] == 3

    def test_comparison_condition(self):
        policy = parse_erdl("allow Reader(lvl) : Doc(c) : lvl >= c")
        stmt = policy.statements[0]
        assert stmt.conditions[0].kind == "cmp"

    def test_bad_keyword_rejected(self):
        from repro.errors import RDLSyntaxError
        with pytest.raises(RDLSyntaxError):
            parse_erdl("permit X : E(a)")


class TestAdmissionAndFiltering:
    def test_admin_sees_everything(self, world):
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "Admin", ("root",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        broker.register(session, template("Seen", WILDCARD, WILDCARD))
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        broker.signal(Event("Seen", ("badge-jmb", "s2")))
        assert len(events) == 2

    def test_user_sees_only_own_badge(self, world):
        """Section 7.5: location information is sensitive; a user may
        monitor their own badge only."""
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        broker.register(session, template("Seen", WILDCARD, WILDCARD))
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        broker.signal(Event("Seen", ("badge-jmb", "s2")))
        assert [e.args[0] for e in events] == ["badge-rjh"]

    def test_visitor_session_rejected(self, world):
        """A role the policy can never satisfy is refused at admission."""
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "Visitor", ("guest",))
        with pytest.raises(AccessDenied):
            broker.establish_session(lambda e, h: None, cert)
        assert broker.rejected_sessions == 1

    def test_forged_certificate_rejected(self, world):
        import dataclasses
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        forged = dataclasses.replace(cert, args=("root",))
        from repro.errors import FraudError
        with pytest.raises(FraudError):
            broker.establish_session(lambda e, h: None, forged)

    def test_hopeless_registration_rejected(self, world):
        """Admission control during registration (glossary): the server
        refuses to monitor for events the client can never receive."""
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        with pytest.raises(AccessDenied):
            broker.register(session, template("Payroll", WILDCARD))
        assert broker.rejected_registrations == 1

    def test_revocation_tears_down_session(self, world):
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        broker.register(session, template("Seen", WILDCARD, WILDCARD))
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        oasis.exit_role(cert)
        broker.signal(Event("Seen", ("badge-rjh", "s2")))
        assert len(events) == 1
        assert not session.open

    def test_default_deny(self, world):
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        # MovedSite of someone else's badge: no statement allows it
        broker.register(session, template("MovedSite", WILDCARD, WILDCARD, WILDCARD))
        broker.signal(Event("MovedSite", ("badge-jmb", "a", "b")))
        assert events == []

    def test_filter_specialisation_amortised(self, world):
        """Fig 7.1: per-notification work is just template match + any
        residual condition; the policy is compiled once per session."""
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        events, notify = collector()
        session = broker.establish_session(notify, cert)
        session_filter = broker._filters[session.id]
        # the Admin and Visitor statements were dropped at specialisation:
        # only the two LoggedOn statements remain
        assert all(
            tpl.name in ("Seen", "MovedSite") for _, tpl, _, _ in session_filter.compiled
        )
        assert len(session_filter.compiled) == 2


class TestPolicyProxy:
    def test_remote_consumer_gets_filtered_feed(self, world):
        """Fig 7.3: the proxy applies local policy before events cross to
        the remote site."""
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        received = []
        proxy = PolicyProxy(
            broker, cert, deliver=lambda e, h: received.append(e) if e else None
        )
        proxy.register(template("Seen", WILDCARD, WILDCARD))
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        broker.signal(Event("Seen", ("badge-jmb", "s2")))
        assert [e.args[0] for e in received] == ["badge-rjh"]
        assert proxy.forwarded == 1

    def test_proxy_cannot_over_register(self, world):
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        proxy = PolicyProxy(broker, cert, deliver=lambda e, h: None)
        with pytest.raises(AccessDenied):
            proxy.register(template("Payroll", WILDCARD))

    def test_proxy_closes(self, world):
        oasis, broker, host = world
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        received = []
        proxy = PolicyProxy(
            broker, cert, deliver=lambda e, h: received.append(e) if e else None
        )
        proxy.register(template("Seen", WILDCARD, WILDCARD))
        proxy.close()
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        assert received == []

    def test_proxy_forwards_over_network(self, world):
        from repro.runtime import wire
        from repro.runtime.network import Network
        from repro.runtime.simulator import Simulator

        oasis, broker, host = world
        sim = Simulator()
        net = Network(sim, seed=4)
        remote_got = []

        def remote_node(message):
            for msg in wire.unpack(message):
                if msg.kind == "proxied-event":
                    remote_got.append(msg.payload["event"])

        net.add_node("remote-site", remote_node)
        net.add_node("local-proxy", lambda m: None)
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "Admin", ("root",))
        proxy = PolicyProxy(
            broker, cert, deliver=lambda e, h: None,
            network=net, local_address="local-proxy", remote_address="remote-site",
        )
        proxy.register(template("Seen", WILDCARD, WILDCARD))
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        sim.run()
        assert len(remote_got) == 1
