"""PolicyProxy over the batched wire transport (fig 7.3 traffic)."""

import pytest

from repro.core import HostOS, OasisService
from repro.events.model import Event, WILDCARD, template
from repro.runtime import wire
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WirePolicy
from repro.security.admission import SecureEventBroker
from repro.security.erdl import parse_erdl
from repro.security.proxy import PolicyProxy


def make_world():
    oasis = OasisService("sec")
    oasis.add_rolefile("main", """
def LoggedOn(u)  u: string
LoggedOn(u) <-
""")
    policy = parse_erdl("allow LoggedOn(u) : Seen(b, s)")
    broker = SecureEventBroker("badges", oasis, policy)
    sim = Simulator()
    net = Network(sim, seed=5, default_delay=0.001)
    got = []

    def remote_node(message):
        for msg in wire.unpack(message):
            got.append((msg.kind, msg.payload))

    net.add_node("remote-site", remote_node)
    net.add_node("local-proxy", lambda m: None)
    cert = oasis.enter_role(HostOS("hq").create_domain().client_id, "LoggedOn", ("rjh21",))
    return oasis, broker, sim, net, got, cert


def test_events_batch_across_the_boundary():
    oasis, broker, sim, net, got, cert = make_world()
    proxy = PolicyProxy(
        broker, cert, deliver=lambda e, h: None,
        network=net, local_address="local-proxy", remote_address="remote-site",
    )
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    for i in range(20):
        broker.signal(Event("Seen", (f"badge{i}", "s1")))
    sim.run()
    events = [p["event"].args[0] for k, p in got if k == "proxied-event"]
    assert events == [f"badge{i}" for i in range(20)]
    # same-instant signals shared one wire message
    assert net.stats.messages_sent == 1
    assert net.stats.payloads_carried == 20


def test_horizon_only_heartbeats_coalesce():
    """Pure heartbeats (no event) inside one batch window collapse to the
    latest horizon."""
    oasis, broker, sim, net, got, cert = make_world()
    proxy = PolicyProxy(
        broker, cert, deliver=lambda e, h: None,
        network=net, local_address="local-proxy", remote_address="remote-site",
        policy=WirePolicy(max_batch=1000, max_delay=0.5),
    )
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    for _ in range(5):
        broker.heartbeat()
    sim.run()
    horizons = [p["horizon"] for k, p in got if k == "proxied-horizon"]
    assert len(horizons) == 1      # coalesced last-wins
    assert net.stats.coalesced == 4
    assert proxy.forwarded == 0


def test_close_flushes_pending_traffic():
    oasis, broker, sim, net, got, cert = make_world()
    proxy = PolicyProxy(
        broker, cert, deliver=lambda e, h: None,
        network=net, local_address="local-proxy", remote_address="remote-site",
        policy=WirePolicy(max_batch=1000, max_delay=60.0),
    )
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    broker.signal(Event("Seen", ("badge-rjh", "s1")))
    proxy.close()
    sim.run()
    assert any(k == "proxied-event" for k, _ in got)


def test_policy_still_applies_before_batching():
    """Batching sits after admission control: a filtered event never
    enters the channel."""
    oasis = OasisService("sec2")
    oasis.add_rolefile("main", """
def LoggedOn(u)  u: string
LoggedOn(u) <-
""")
    owners = {"rjh21": "badge-rjh"}
    policy = parse_erdl(
        "allow LoggedOn(u) : Seen(b, s) : owns(u, b)",
        predicates={"owns": lambda u, b: owners.get(u) == b},
    )
    broker = SecureEventBroker("badges2", oasis, policy)
    sim = Simulator()
    net = Network(sim, seed=5)
    got = []
    net.add_node("remote-site", lambda m: got.extend(wire.unpack(m)))
    net.add_node("local-proxy", lambda m: None)
    cert = oasis.enter_role(HostOS("hq").create_domain().client_id, "LoggedOn", ("rjh21",))
    proxy = PolicyProxy(
        broker, cert, deliver=lambda e, h: None,
        network=net, local_address="local-proxy", remote_address="remote-site",
    )
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    broker.signal(Event("Seen", ("badge-kgm", "s1")))   # not rjh21's badge
    sim.run()
    assert [m for m in got if m.kind == "proxied-event"] == []
    assert proxy.forwarded == 0
