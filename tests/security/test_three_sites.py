"""The three-site policy scenario of section 7.5 / fig 7.2.

Three badge sites publish their sighting events under different local
policies, and a remote monitoring application (running at a fourth
organisation) consumes all three through policy proxies — each site's
own policy is enforced *at that site* (fig 7.3), so the application sees
exactly the union of what each site is willing to disclose.

* **open-lab** — any logged-on user may see every sighting;
* **office**  — a user may see only their own badge's sightings;
* **vault**   — only site administrators see anything; ordinary users'
  sessions are refused outright.
"""

import pytest

from repro.core import HostOS, OasisService
from repro.errors import AccessDenied
from repro.events.model import Event, WILDCARD, template
from repro.security.admission import SecureEventBroker
from repro.security.erdl import parse_erdl
from repro.security.proxy import PolicyProxy

OWNERS = {"rjh21": "badge-rjh", "kgm": "badge-kgm"}


def owns(user, badge):
    return OWNERS.get(user) == badge


def make_site(name, policy_text):
    oasis = OasisService(f"{name}-sec")
    oasis.add_rolefile("main", """
def LoggedOn(u)  u: string
def Admin(u)  u: string
LoggedOn(u) <-
Admin(u) <- : u == "root"
""")
    policy = parse_erdl(policy_text, predicates={"owns": owns})
    broker = SecureEventBroker(f"{name}-badges", oasis, policy)
    return oasis, broker


@pytest.fixture
def sites():
    open_lab = make_site("open-lab", "allow LoggedOn(u) : Seen(b, s)")
    office = make_site("office", "allow LoggedOn(u) : Seen(b, s) : owns(u, b)")
    vault = make_site("vault", "allow Admin(u) : Seen(b, s)")
    return {"open-lab": open_lab, "office": office, "vault": vault}


def test_fig72_local_policies_differ(sites):
    """The same user at each site sees different slices of the events."""
    host = HostOS("ws")
    results = {}
    for name, (oasis, broker) in sites.items():
        client = host.create_domain().client_id
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        got = []
        try:
            session = broker.establish_session(
                lambda e, h: got.append(e.args[0]) if e else None, cert
            )
            broker.register(session, template("Seen", WILDCARD, WILDCARD))
        except AccessDenied:
            results[name] = "refused"
            continue
        broker.signal(Event("Seen", ("badge-rjh", "s1")))
        broker.signal(Event("Seen", ("badge-kgm", "s2")))
        results[name] = got
    assert results["open-lab"] == ["badge-rjh", "badge-kgm"]
    assert results["office"] == ["badge-rjh"]
    assert results["vault"] == "refused"


def test_fig73_remote_application_through_proxies(sites):
    """A remote monitoring application consumes all three sites through
    proxies; each site's disclosure is decided locally."""
    host = HostOS("remote-org")
    client = host.create_domain().client_id
    received = {}
    proxies = {}
    for name, (oasis, broker) in sites.items():
        cert = oasis.enter_role(client, "LoggedOn", ("rjh21",))
        received[name] = []
        try:
            proxy = PolicyProxy(
                broker, cert,
                deliver=lambda e, h, name=name: received[name].append(e.args[0]) if e else None,
            )
            proxy.register(template("Seen", WILDCARD, WILDCARD))
            proxies[name] = proxy
        except AccessDenied:
            received[name] = "refused"
    for name, (oasis, broker) in sites.items():
        broker.signal(Event("Seen", ("badge-rjh", f"{name}-s1")))
        broker.signal(Event("Seen", ("badge-kgm", f"{name}-s2")))
    assert received["open-lab"] == ["badge-rjh", "badge-kgm"]
    assert received["office"] == ["badge-rjh"]
    assert received["vault"] == "refused"


def test_vault_admin_via_proxy(sites):
    """The vault discloses to its administrator, even remotely."""
    oasis, broker = sites["vault"]
    client = HostOS("hq").create_domain().client_id
    cert = oasis.enter_role(client, "Admin", ("root",))
    got = []
    proxy = PolicyProxy(broker, cert,
                        deliver=lambda e, h: got.append(e) if e else None)
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    broker.signal(Event("Seen", ("badge-rjh", "vault-s1")))
    assert len(got) == 1


def test_remote_site_cannot_widen_policy(sites):
    """The proxy runs at the owning site: a compromised remote site gains
    nothing by asking for more (fig 7.3's point)."""
    oasis, broker = sites["office"]
    client = HostOS("evil-org").create_domain().client_id
    cert = oasis.enter_role(client, "LoggedOn", ("kgm",))
    got = []
    proxy = PolicyProxy(broker, cert,
                        deliver=lambda e, h: got.append(e) if e else None)
    proxy.register(template("Seen", WILDCARD, WILDCARD))
    broker.signal(Event("Seen", ("badge-rjh", "s1")))   # not kgm's badge
    assert got == []
    assert proxy.forwarded == 0
