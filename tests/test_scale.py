"""Scale tests: the architecture's claims exercised at larger sizes."""

import pytest

from repro.core import HostOS, OasisService
from repro.core.credentials import CredentialRecordTable, RecordOp, RecordState
from repro.errors import RevokedError


def test_wide_delegation_tree_cascade_is_complete():
    """A 3-level tree, fan-out 10 (1110 certificates): revoking the root
    login revokes every descendant, none survive."""
    svc = OasisService("S")
    svc.add_rolefile("main", """
def Agent(n)  n: integer
def Sub(n)  n: integer
Agent(n) <-
Sub(n) <- Agent(n)* <|* Sub
Sub(n) <- Agent(n)* <|* Agent
""")
    host = HostOS("h")
    root_client = host.create_domain().client_id
    root = svc.enter_role(root_client, "Agent", (0,))

    level = [root]
    all_certs = [root]
    counter = [0]
    for _depth in range(2):
        next_level = []
        for parent in level:
            for _ in range(10):
                counter[0] += 1
                # revoke_on_exit ties each delegation to the delegator's
                # own membership, chaining the whole tree to the root
                delegation, _ = svc.delegate(
                    parent, "Sub", role_args=(counter[0],), revoke_on_exit=True
                )
                child_id = host.create_domain().client_id
                child_base = svc.enter_role(child_id, "Agent", (counter[0],))
                child = svc.enter_delegated_role(
                    child_id, delegation, credentials=(child_base,)
                )
                next_level.append(child)
                all_certs.append(child)
        level = next_level
    assert len(all_certs) == 1 + 10 + 100

    svc.exit_role(root)
    revoked = 0
    for cert in all_certs:
        try:
            svc.validate(cert)
        except RevokedError:
            revoked += 1
    assert revoked == len(all_certs)


def test_ten_thousand_certificates_validate_flat():
    """Per-validation cost does not grow with the number of outstanding
    certificates (hash-table table, cached signatures)."""
    svc = OasisService("S")
    svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
    host = HostOS("h")
    client = host.create_domain().client_id
    certs = [svc.enter_role(client, "Anon", (i,)) for i in range(10_000)]
    # validate a sample spread across the population
    for cert in certs[::1000]:
        svc.validate(cert)
    assert svc.stats.validations >= 10


def test_credential_table_handles_100k_deep_chain():
    """The worklist cascade never grows the Python stack: a 100,000-link
    delegation chain revokes end to end with no recursion-limit games."""
    table = CredentialRecordTable()
    record = table.create_source(state=RecordState.TRUE)
    refs = [record.ref]
    current = record
    for _ in range(100_000):
        current = table.create_and([current.ref])
        refs.append(current.ref)
    assert table.state_of(refs[-1]) is RecordState.TRUE
    table.revoke(refs[0])
    assert table.state_of(refs[-1]) is RecordState.FALSE
    stats = table.last_cascade
    assert stats.max_depth == 100_000
    assert stats.records_visited == 100_001


def test_credential_table_handles_50k_wide_fanout():
    """One revocation kills 50,000 direct dependants in a single cascade."""
    table = CredentialRecordTable()
    root = table.create_source(state=RecordState.TRUE)
    gates = [table.create_and([root.ref]) for _ in range(50_000)]
    table.revoke(root.ref)
    assert all(g.state is RecordState.FALSE for g in gates[::5000])
    stats = table.last_cascade
    assert stats.records_visited == 50_001
    assert stats.max_depth == 1


def test_revoke_many_shared_fanin_is_one_cascade():
    """Batched revocation: N sources feeding a shared fan-in settle in
    ONE cascade, and the fan-in's watch fires exactly once."""
    table = CredentialRecordTable()
    sources = [table.create_source(state=RecordState.TRUE) for _ in range(1_000)]
    fan_in = table.create_gate(
        RecordOp.OR, [(s.ref, False) for s in sources], direct_use=True
    )
    fired = []
    table.watch(fan_in.ref, lambda r, old, new: fired.append((old, new)))
    before = table.propagations
    found = table.revoke_many([s.ref for s in sources])
    assert found == 1_000
    assert table.propagations == before + 1           # one cascade, not N
    assert table.state_of(fan_in.ref) is RecordState.FALSE
    assert fired == [(RecordState.TRUE, RecordState.FALSE)]  # fired once, settled
    assert table.last_cascade.records_visited >= 1_000


def test_group_purge_is_one_cascade_in_both_tables():
    """A batched membership purge through a *foreign* group service is
    one cascade in the group table AND one in the service's mirror table
    (the bridge brackets the forwarded updates in a batch window)."""
    from repro.core import GroupService

    groups = GroupService()
    groups.create_group("staff", {f"u{i}" for i in range(100)})
    svc = OasisService("S", groups=groups)
    svc.add_rolefile("main", """
def Who(u)  u: string
Who(u) <-
Member(u) <- Who(u) : (u in staff)*
""")
    host = HostOS("h")
    certs = []
    for i in range(100):
        client = host.create_domain().client_id
        who = svc.enter_role(client, "Who", (f"u{i}",))
        certs.append(svc.enter_role(client, "Member", credentials=(who,)))
    group_before = groups.credentials.propagations
    svc_before = svc.credentials.propagations
    groups.replace_members("staff", set())
    assert groups.credentials.propagations == group_before + 1
    assert svc.credentials.propagations == svc_before + 1
    for cert in certs[::10]:
        with pytest.raises(RevokedError):
            svc.validate(cert)


def test_group_change_fans_out_to_thousand_members():
    """One group flip revokes a thousand certificates in one propagation
    pass."""
    from repro.core import GroupService

    groups = GroupService()
    groups.create_group("staff", {"dm"})
    svc = OasisService("S", groups=groups)
    svc.add_rolefile("main", """
def Who(u)  u: string
Who(u) <-
Member(u) <- Who(u) : (u in staff)*
""")
    host = HostOS("h")
    certs = []
    for i in range(1_000):
        client = host.create_domain().client_id
        who = svc.enter_role(client, "Who", ("dm",))
        certs.append(svc.enter_role(client, "Member", credentials=(who,)))
    groups.remove_member("staff", "dm")
    for cert in certs[::100]:
        with pytest.raises(RevokedError):
            svc.validate(cert)


def test_broker_with_thousand_registrations():
    from repro.events.broker import EventBroker
    from repro.events.model import Event, template

    broker = EventBroker("big")
    hits = []
    for i in range(1_000):
        session = broker.establish_session(
            lambda e, h, i=i: hits.append(i) if e else None
        )
        broker.register(session, template("E", i))
    broker.signal(Event("E", (567,)))
    assert hits == [567]
