"""Scale tests: the architecture's claims exercised at larger sizes."""

import pytest

from repro.core import HostOS, OasisService
from repro.core.credentials import CredentialRecordTable, RecordState
from repro.errors import RevokedError


def test_wide_delegation_tree_cascade_is_complete():
    """A 3-level tree, fan-out 10 (1110 certificates): revoking the root
    login revokes every descendant, none survive."""
    svc = OasisService("S")
    svc.add_rolefile("main", """
def Agent(n)  n: integer
def Sub(n)  n: integer
Agent(n) <-
Sub(n) <- Agent(n)* <|* Sub
Sub(n) <- Agent(n)* <|* Agent
""")
    host = HostOS("h")
    root_client = host.create_domain().client_id
    root = svc.enter_role(root_client, "Agent", (0,))

    level = [root]
    all_certs = [root]
    counter = [0]
    for _depth in range(2):
        next_level = []
        for parent in level:
            for _ in range(10):
                counter[0] += 1
                # revoke_on_exit ties each delegation to the delegator's
                # own membership, chaining the whole tree to the root
                delegation, _ = svc.delegate(
                    parent, "Sub", role_args=(counter[0],), revoke_on_exit=True
                )
                child_id = host.create_domain().client_id
                child_base = svc.enter_role(child_id, "Agent", (counter[0],))
                child = svc.enter_delegated_role(
                    child_id, delegation, credentials=(child_base,)
                )
                next_level.append(child)
                all_certs.append(child)
        level = next_level
    assert len(all_certs) == 1 + 10 + 100

    svc.exit_role(root)
    revoked = 0
    for cert in all_certs:
        try:
            svc.validate(cert)
        except RevokedError:
            revoked += 1
    assert revoked == len(all_certs)


def test_ten_thousand_certificates_validate_flat():
    """Per-validation cost does not grow with the number of outstanding
    certificates (hash-table table, cached signatures)."""
    svc = OasisService("S")
    svc.add_rolefile("main", "def Anon(n)  n: integer\nAnon(n) <- ")
    host = HostOS("h")
    client = host.create_domain().client_id
    certs = [svc.enter_role(client, "Anon", (i,)) for i in range(10_000)]
    # validate a sample spread across the population
    for cert in certs[::1000]:
        svc.validate(cert)
    assert svc.stats.validations >= 10


def test_credential_table_handles_deep_chain():
    table = CredentialRecordTable()
    record = table.create_source(state=RecordState.TRUE)
    refs = [record.ref]
    current = record
    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(20_000)
    try:
        for _ in range(5_000):
            current = table.create_and([current.ref])
            refs.append(current.ref)
        assert table.state_of(refs[-1]) is RecordState.TRUE
        table.revoke(refs[0])
        assert table.state_of(refs[-1]) is RecordState.FALSE
    finally:
        sys.setrecursionlimit(old_limit)


def test_group_change_fans_out_to_thousand_members():
    """One group flip revokes a thousand certificates in one propagation
    pass."""
    from repro.core import GroupService

    groups = GroupService()
    groups.create_group("staff", {"dm"})
    svc = OasisService("S", groups=groups)
    svc.add_rolefile("main", """
def Who(u)  u: string
Who(u) <-
Member(u) <- Who(u) : (u in staff)*
""")
    host = HostOS("h")
    certs = []
    for i in range(1_000):
        client = host.create_domain().client_id
        who = svc.enter_role(client, "Who", ("dm",))
        certs.append(svc.enter_role(client, "Member", credentials=(who,)))
    groups.remove_member("staff", "dm")
    for cert in certs[::100]:
        with pytest.raises(RevokedError):
            svc.validate(cert)


def test_broker_with_thousand_registrations():
    from repro.events.broker import EventBroker
    from repro.events.model import Event, template

    broker = EventBroker("big")
    hits = []
    for i in range(1_000):
        session = broker.establish_session(
            lambda e, h, i=i: hits.append(i) if e else None
        )
        broker.register(session, template("E", i))
    broker.signal(Event("E", (567,)))
    assert hits == [567]
