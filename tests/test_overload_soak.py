"""Seeded overload-burst chaos soak (ISSUE 6 acceptance).

The ISSUE-5 soak proves fail-closed *correctness* under faults; this one
proves bounded *liveness* under load.  The same three-service world runs
with the overload-resilience layer switched on — bounded held-queue wire
channels, a degradation-enabled custode — while the fault plan drives
traffic spikes (OverloadBurst), a Login partition long enough to trip
suspicion, link flaps, loss, duplication, reordering and a crash-restart.

Swept invariants, on top of fail-closed:

* **queue bounds** — no wire queue ever outgrows ``max_queue`` (spills
  are accounted, not silent);
* **degradation staleness** — no degraded decision is ever served
  staler than the policy's ``max_staleness``;
* **conservation** — every message offered to the network is delivered,
  in a drop counter, or in flight: ``Network.unaccounted() == 0``.

Everything is seeded: a failure replays exactly.
"""

import random

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import AccessDenied, OasisError, RevokedError
from repro.mssa.acl import Acl
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.mssa.custode import DegradationPolicy
from repro.runtime.clock import SimClock
from repro.runtime.faults import (
    ChaosController,
    CrashRestart,
    DuplicationWindow,
    FaultPlan,
    InvariantChecker,
    LinkFlap,
    LossBurst,
    OverloadBurst,
    PartitionWindow,
    ReorderWindow,
)
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WirePolicy

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

SEED = 2206
DURATION = 80.0
SETTLE = 40.0
OPS_TARGET = 400
HEARTBEAT_PERIOD = 1.0
HEARTBEAT_GRACE = 2.0
MAX_OUTAGE = 12.0
STALE_BOUND = MAX_OUTAGE + (HEARTBEAT_GRACE + 1.0) * HEARTBEAT_PERIOD + 5.0
MAX_QUEUE = 4          # deliberately tight so the soak exercises spilling
MAX_STALENESS = 6.0    # degradation bound, well inside the partition window
PINNED_SESSIONS = 3    # long-lived readers that stay logged in across faults


def build_plan():
    login, files, ffc = "oasis:Login", "oasis:Files", "oasis:ffc"
    events = (
        # a traffic spike on a healthy link: queues absorb it
        OverloadBurst(at=10.0, duration=3.0, source=files, dest=ffc, rate=300.0),
        # the centrepiece: Login partitioned long enough for suspicion,
        # degradation, degradation *expiry*, and queue overflow
        PartitionWindow(
            at=20.0,
            group_a=frozenset({login}),
            group_b=frozenset({files, ffc}),
            duration=MAX_OUTAGE,
        ),
        # a second spike *during* the partition: overload and partition
        # interact on the same links and counters
        OverloadBurst(at=24.0, duration=4.0, source=files, dest=ffc, rate=400.0),
        LinkFlap(at=45.0, source=files, dest=login, duration=4.0),
        LossBurst(at=55.0, duration=5.0, probability=0.4),
        DuplicationWindow(at=58.0, duration=5.0, probability=0.4),
        ReorderWindow(at=62.0, duration=5.0, probability=0.4, max_extra_delay=0.5),
        CrashRestart(at=68.0, service="Files", downtime=4.0),
    )
    return FaultPlan(events=events, seed=SEED)


class OverloadWorld:
    def __init__(self, seed=SEED):
        self.sim = Simulator()
        self.net = Network(self.sim, seed=seed, default_delay=0.01)
        self.clock = SimClock(self.sim)
        self.registry = ServiceRegistry()
        self.linkage = SimLinkage(
            self.net,
            policy=WirePolicy(max_batch=16, max_delay=0.05, max_queue=MAX_QUEUE),
        )
        self.login = OasisService(
            "Login", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login.export_type(ObjectType("Login.userid"), "userid")
        self.login.add_rolefile("main", LOGIN_RDL)
        self.files = OasisService(
            "Files", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.files.add_rolefile("main", FILES_RDL)
        self.ffc = ByteSegmentCustode(
            "ffc",
            registry=self.registry,
            linkage=self.linkage,
            clock=self.clock,
            user_groups=lambda u: {"staff"},
            degradation=DegradationPolicy(max_staleness=MAX_STALENESS),
        )
        self.services = {
            "Login": self.login,
            "Files": self.files,
            "ffc": self.ffc.service,
        }
        for consumer in (self.files, self.ffc.service):
            self.linkage.monitor(
                self.login, consumer, period=HEARTBEAT_PERIOD, grace=HEARTBEAT_GRACE
            )
        self.host = HostOS("overload-host")
        self.acl = self.ffc.create_acl(
            Acl.parse("@staff=+r admin=+rwad", alphabet="rwad")
        )
        self.fid = self.ffc.create_segment(self.acl, b"overload payload")
        self.rng = random.Random(f"overload-ops:{seed}")
        self.sessions = []
        self.pinned = []
        self.counts = {"login": 0, "exit": 0, "enter": 0, "read": 0,
                       "skipped_down": 0}
        self.denials = 0
        self.degraded_reads = 0
        self.next_user = 0
        self.ops_done = 0
        self.queue_breaches = []
        self.staleness_breaches = []

    # ------------------------------------------------------------- operations

    def up(self, name):
        return not self.chaos.is_down(name)

    def step(self):
        self.ops_done += 1
        op = self.rng.choices(
            ["login", "exit", "enter", "read"], weights=[3, 2, 3, 8]
        )[0]
        try:
            getattr(self, "_op_" + op)()
        except (RevokedError, AccessDenied):
            self.denials += 1
        except OasisError:
            self.denials += 1

    def _make_pinned(self):
        """A long-lived session, primed, that the op mix never exits.

        These model the steady clients the degradation tier exists for:
        they hold a warm cached decision when the issuer partitions.
        """
        user = f"pinned{len(self.pinned)}"
        domain = self.host.create_domain()
        cert = self.login.enter_role(
            domain.client_id, "LoggedOn", (user, "overload-host")
        )
        use_acl = self.ffc.enter_use_acl(domain.client_id, self.acl, cert)
        self.ffc.read_segment(use_acl, self.fid)
        self.pinned.append(
            {"user": user, "client": domain.client_id,
             "login_cert": cert, "reader": None, "use_acl": use_acl}
        )

    def _op_login(self):
        if not self.up("Login"):
            self.counts["skipped_down"] += 1
            return
        user = f"u{self.next_user}"
        self.next_user += 1
        domain = self.host.create_domain()
        cert = self.login.enter_role(domain.client_id, "LoggedOn", (user, "overload-host"))
        self.sessions.append(
            {"user": user, "client": domain.client_id,
             "login_cert": cert, "reader": None, "use_acl": None}
        )
        self.counts["login"] += 1

    def _op_exit(self):
        if not self.up("Login") or not self.sessions:
            self.counts["skipped_down"] += 1
            return
        session = self.rng.choice(self.sessions)
        self.sessions.remove(session)
        self.login.exit_role(session["login_cert"])
        self.counts["exit"] += 1

    def _op_enter(self):
        if not self.sessions:
            return
        session = self.rng.choice(self.sessions)
        if session["reader"] is None and self.up("Files"):
            session["reader"] = self.files.enter_role(
                session["client"], "Reader", credentials=(session["login_cert"],)
            )
            self.counts["enter"] += 1
        elif session["use_acl"] is None and self.up("ffc"):
            session["use_acl"] = self.ffc.enter_use_acl(
                session["client"], self.acl, session["login_cert"]
            )
            self.counts["enter"] += 1
        else:
            self.counts["skipped_down"] += 1

    def _op_read(self):
        candidates = self.pinned + [
            s for s in self.sessions if s["use_acl"] is not None
        ]
        if not candidates or not self.up("ffc"):
            self.counts["skipped_down"] += 1
            return
        session = self.rng.choice(candidates)
        self.counts["read"] += 1
        before = self.ffc.storage.degraded_hits
        self.ffc.read_segment(session["use_acl"], self.fid)
        if self.ffc.storage.degraded_hits > before:
            self.degraded_reads += 1

    # ------------------------------------------------------------------- run

    def sweep(self):
        self.checker.check_fail_closed()
        self.queue_breaches.extend(self.checker.check_queue_bounds())
        self.staleness_breaches.extend(self.checker.check_degradation_bounds())

    def run(self):
        plan = build_plan()
        self.chaos = ChaosController(
            self.net,
            plan,
            crash=lambda name: self.linkage.crash(self.services[name]),
            restart=lambda name: self.linkage.restart(self.services[name]),
        )
        self.checker = InvariantChecker(
            list(self.services.values()),
            stale_bound=STALE_BOUND,
            is_down=self.chaos.is_down,
            channels=self.linkage.all_channels,
            custodes=[self.ffc],
        )
        self.chaos.arm()
        for i in range(PINNED_SESSIONS):
            self.sim.schedule_at(0.1 + i * 0.1, self._make_pinned)
        spacing = DURATION / OPS_TARGET
        for i in range(OPS_TARGET):
            self.sim.schedule_at(0.5 + i * spacing, self.step)
        for i in range(int(DURATION + SETTLE)):
            self.sim.schedule_at(1.0 + i, self.sweep)
        end = max(plan.horizon(), DURATION) + SETTLE
        self.sim.schedule_at(max(plan.horizon(), DURATION) + 1.0, self.chaos.disarm)
        self.sim.run_until(end)
        return plan


@pytest.fixture(scope="module")
def soak():
    world = OverloadWorld()
    world.plan = world.run()
    return world


def test_soak_exercised_overload_machinery(soak):
    stats = soak.chaos.stats
    assert soak.ops_done >= 350
    assert stats.overload_bursts == 2
    assert stats.overload_messages >= 1000     # the spikes really fired
    # the held-queue machinery ran: batches were held on the dead link,
    # the backlog hit the bound and spilled with accounting
    channels = soak.linkage.all_channels()
    assert sum(ch.stats.held_flushes for ch in channels) >= 1
    assert soak.net.stats.spilled_overflow >= 1
    assert sum(ch.stats.spilled for ch in channels) == soak.net.stats.spilled_overflow
    # the degradation tier served real traffic during the partition
    assert soak.degraded_reads >= 1
    assert soak.ffc.storage.degraded_hits >= 1


def test_soak_never_violates_fail_closed(soak):
    assert soak.checker.checks >= DURATION
    assert soak.checker.violations == [], "\n".join(
        str(v) for v in soak.checker.violations
    )


def test_soak_respects_queue_bounds(soak):
    assert soak.queue_breaches == []
    # and the high-water marks confirm the bound was actually tested
    assert any(
        ch.stats.max_pending >= ch.policy.max_queue
        for ch in soak.linkage.all_channels()
    )


def test_soak_respects_degradation_staleness_bound(soak):
    assert soak.staleness_breaches == []
    assert 0.0 < soak.ffc.storage.degraded_max_staleness <= MAX_STALENESS
    # the bound bit at least once: reads beyond it fell back and denied
    assert soak.ffc.storage.degraded_expired >= 1


def test_soak_accounts_for_every_message(soak):
    """Acceptance: all NetworkStats counters sum to messages offered."""
    stats = soak.net.stats
    assert stats.offered() == (
        stats.delivered
        + stats.dropped_by_loss
        + stats.dropped_while_down
        + stats.dropped_no_handler
        + stats.dropped_by_fault
        + soak.net.in_flight
    )
    assert soak.net.unaccounted() == 0


def test_soak_converges_after_faults_cease(soak):
    assert soak.checker.converged(), soak.checker.divergences()


def test_soak_replays_identically():
    def fingerprint():
        world = OverloadWorld()
        world.run()
        return (
            world.counts,
            world.denials,
            world.degraded_reads,
            world.net.stats.messages_sent,
            world.net.stats.spilled_overflow,
            world.chaos.stats,
            len(world.checker.violations),
        )

    assert fingerprint() == fingerprint()
