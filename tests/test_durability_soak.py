"""Durability soak (ISSUE 10 acceptance).

Two scenarios attack the apply-vs-notify window the transactional
outbox exists to close:

1. **Crash-mid-cascade** — the shard leader revokes 1000 certificates
   in one cascade (a 2k-record settle: every source and its surrogate
   flips) with a crash armed at the ``mid-append`` fault point: the
   journal transaction lands, then the process dies before the outbox
   drains a single notification.  Recovery must replay the local
   journal, redrain the outbox, and converge with zero fail-closed
   violations and a clean conservation sweep.

2. **Seeded journal-crash chaos soak** — a fleet runs continuous role
   entry/revocation while a seeded fault plan flaps links, drops,
   duplicates and reorders messages, and fires :class:`JournalCrash`
   events at both fault points.  Every second the fail-closed sweep and
   the outbox conservation sweep run; after the faults cease the fleet
   must converge, and the whole run must replay identically from its
   seed.
"""

import random

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.credentials import RecordState
from repro.core.linkage import SimLinkage
from repro.core.sharding import ShardCoordinator
from repro.core.types import ObjectType
from repro.errors import OasisError
from repro.runtime.clock import SimClock
from repro.runtime.faults import (
    ChaosController,
    FaultPlan,
    InvariantChecker,
    JournalCrash,
)
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

SEED = 1010


def build_world(seed=SEED, delay=0.01, monitor=False):
    sim = Simulator()
    net = Network(sim, seed=seed, default_delay=delay)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(net)
    login = OasisService("Login", registry=registry, linkage=linkage, clock=clock)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", LOGIN_RDL)
    files = OasisService("Files", registry=registry, linkage=linkage, clock=clock)
    files.add_rolefile("main", FILES_RDL)
    linkage.enable_journal(login, seed=seed)
    linkage.enable_journal(files, seed=seed)
    if monitor:
        linkage.monitor(login, files, period=1.0, grace=2.0)
    return sim, net, linkage, login, files


def surrogate_states(files):
    return {
        record.external_ref: record.state
        for record in files.credentials.externals_of("Login")
    }


# ------------------------------------------------------ crash mid-cascade


class CascadeCrashRun:
    """Kill the leader between journal append and outbox drain in the
    middle of a mass revocation, then recover."""

    PAIRS = 1000
    DOWNTIME = 3.0

    def __init__(self):
        sim, net, linkage, login, files = build_world()
        self.sim, self.net, self.linkage = sim, net, linkage
        self.login, self.files = login, files
        self.store = linkage.durable
        host = HostOS("cascade-host")
        self.pairs = []
        for i in range(self.PAIRS):
            domain = host.create_domain()
            cert = login.enter_role(domain.client_id, "LoggedOn", (f"u{i}", "h"))
            files.enter_role(domain.client_id, "Reader", credentials=(cert,))
            self.pairs.append(cert)
        sim.run_until(5.0)

        self.down = set()
        self.checker = InvariantChecker(
            [login, files],
            stale_bound=self.DOWNTIME + 10.0,
            is_down=lambda name: name in self.down,
            journals=self.store,
        )
        for i in range(40):
            sim.schedule_at(5.5 + i, self.checker.check_fail_closed)
        self.sweep_breaches = []
        for i in range(40):
            sim.schedule_at(
                5.5 + i,
                lambda: self.sweep_breaches.extend(
                    self.checker.check_outbox_conservation()
                ),
            )

        relay = linkage.relay_of("Login")
        relay.arm_crash("mid-append", self._crash_soon)
        self.changed_before = (
            login.credentials.cascade_totals.records_changed
            + files.credentials.cascade_totals.records_changed
        )
        # ONE cascade over 2k records: 1000 sources flip FALSE and every
        # surrogate must follow — this is the settle the crash interrupts
        login.credentials.revoke_many([cert.crr for cert in self.pairs])
        self.changed_local = (
            login.credentials.cascade_totals.records_changed
            + files.credentials.cascade_totals.records_changed
            - self.changed_before
        )
        sim.run_until(sim.now + self.DOWNTIME)
        self.states_during_outage = dict(surrogate_states(files))
        self.pending_during_outage = sum(
            1
            for entry in self.store.journal("Login").outbox.values()
            if entry.status == "pending"
        )
        self.down.discard("Login")
        linkage.restart(login)
        sim.run_until(sim.now + 20.0)

        self.coordinator = ShardCoordinator(net, linkage, [login, files])
        self.settle_stats = self.coordinator.settle(max_hops=6, hop_window=0.5)
        sim.run_until(45.0)
        self.changed_total = (
            login.credentials.cascade_totals.records_changed
            + files.credentials.cascade_totals.records_changed
            - self.changed_before
        )

    def _crash_soon(self):
        self.down.add("Login")
        self.sim.schedule(0.0, self.linkage.crash, self.login, name="soak-crash")


@pytest.fixture(scope="module")
def cascade():
    return CascadeCrashRun()


def test_cascade_crash_window_is_real(cascade):
    """The scenario only means something if the crash actually landed in
    the window: state applied locally, nothing notified."""
    assert cascade.changed_local >= cascade.PAIRS   # the leader applied...
    assert cascade.pending_during_outage == cascade.PAIRS   # ...but told no one
    # the full settle spans both shards: a 2k-record cascade
    assert cascade.changed_total >= 2 * cascade.PAIRS
    # during the outage the subscriber still believed the world was TRUE
    assert all(
        state is RecordState.TRUE
        for state in cascade.states_during_outage.values()
    )


def test_cascade_crash_recovers_by_local_replay(cascade):
    journal = cascade.store.journal("Login")
    assert journal.stats.replays == 1
    assert journal.stats.records_replayed > cascade.PAIRS


def test_cascade_crash_loses_no_revocation(cascade):
    states = surrogate_states(cascade.files)
    assert len(states) == cascade.PAIRS
    assert all(state is RecordState.FALSE for state in states.values())
    for cert in cascade.pairs:
        assert cascade.login.credentials.state_of(cert.crr) is RecordState.FALSE


def test_cascade_crash_never_violates_fail_closed(cascade):
    assert cascade.checker.checks >= 30
    assert cascade.checker.violations == [], "\n".join(
        str(v) for v in cascade.checker.violations
    )


def test_cascade_crash_conserves_every_notification(cascade):
    assert cascade.sweep_breaches == []
    assert cascade.store.conservation_breaches() == []
    login_journal = cascade.store.journal("Login")
    delivered = sum(
        1 for e in login_journal.outbox.values() if e.status == "delivered"
    )
    assert delivered == len(login_journal.outbox)


def test_cascade_settle_carries_journal_heads(cascade):
    heads = cascade.settle_stats.journal_heads
    assert heads.keys() == {"Login", "Files"}
    assert heads["Login"] == cascade.store.journal("Login").head()
    assert heads["Files"] == cascade.store.journal("Files").head()


# ------------------------------------------------- seeded journal-crash soak

DURATION = 60.0
SETTLE = 40.0
OPS_TARGET = 240
STALE_BOUND = 6.0 + 3.0 * 1.0 + 5.0   # max outage + suspicion + resend margin


class JournalChaosWorld:
    def __init__(self, seed=SEED):
        self.seed = seed
        (
            self.sim,
            self.net,
            self.linkage,
            self.login,
            self.files,
        ) = build_world(seed=seed, monitor=True)
        self.store = self.linkage.durable
        self.services = {"Login": self.login, "Files": self.files}
        self.host = HostOS("chaos-host")
        self.rng = random.Random(f"durability-ops:{seed}")
        self.sessions = []
        self.next_user = 0
        self.counts = {"enter": 0, "revoke": 0, "skipped_down": 0}
        self.denials = 0
        self.sweep_breaches = []

    def up(self, name):
        return not self.chaos.is_down(name)

    def step(self):
        try:
            if self.sessions and self.rng.random() < 0.4:
                self._op_revoke()
            else:
                self._op_enter()
        except OasisError:
            self.denials += 1

    def _op_enter(self):
        if not (self.up("Login") and self.up("Files")):
            self.counts["skipped_down"] += 1
            return
        user = f"u{self.next_user}"
        self.next_user += 1
        domain = self.host.create_domain()
        cert = self.login.enter_role(domain.client_id, "LoggedOn", (user, "h"))
        self.files.enter_role(domain.client_id, "Reader", credentials=(cert,))
        self.sessions.append(cert)
        self.counts["enter"] += 1

    def _op_revoke(self):
        if not self.up("Login"):
            self.counts["skipped_down"] += 1
            return
        cert = self.rng.choice(self.sessions)
        self.sessions.remove(cert)
        self.login.exit_role(cert)
        self.counts["revoke"] += 1

    def sweep(self):
        self.checker.check_fail_closed()
        self.sweep_breaches.extend(self.checker.check_outbox_conservation())

    def run(self):
        base = FaultPlan.random(
            seed=self.seed,
            duration=DURATION,
            addresses=("oasis:Login", "oasis:Files"),
            services=("Login", "Files"),
            link_flaps=3,
            partitions=1,
            loss_bursts=3,
            duplication_windows=3,
            reorder_windows=2,
            crashes=0,       # wall-clock crashes would disarm the fault
            max_outage=6.0,  # points; every crash here is a JournalCrash
        )
        events = base.events + (
            JournalCrash(at=10.0, service="Login", point="mid-append", downtime=4.0),
            JournalCrash(at=25.0, service="Login", point="mid-drain", downtime=4.0),
            JournalCrash(at=40.0, service="Files", point="mid-append", downtime=4.0),
        )
        plan = FaultPlan(
            events=tuple(sorted(events, key=lambda e: e.at)), seed=self.seed
        )
        self.chaos = ChaosController(
            self.net,
            plan,
            crash=lambda name: self.linkage.crash(self.services[name]),
            restart=lambda name: self.linkage.restart(self.services[name]),
            arm_journal_crash=self.linkage.arm_journal_crash,
        )
        self.checker = InvariantChecker(
            [self.login, self.files],
            stale_bound=STALE_BOUND,
            is_down=self.chaos.is_down,
            journals=self.store,
        )
        self.chaos.arm()
        spacing = DURATION / OPS_TARGET
        for i in range(OPS_TARGET):
            self.sim.schedule_at(0.5 + i * spacing, self.step)
        for i in range(int(DURATION + SETTLE)):
            self.sim.schedule_at(1.0 + i, self.sweep)
        end = max(plan.horizon(), DURATION) + SETTLE
        self.sim.schedule_at(max(plan.horizon(), DURATION) + 1.0, self.chaos.disarm)
        self.sim.run_until(end)
        return plan

    def fingerprint(self):
        login_journal = self.store.journal("Login")
        files_journal = self.store.journal("Files")
        return (
            self.counts,
            self.denials,
            self.net.stats.messages_sent,
            self.chaos.stats,
            len(self.checker.violations),
            len(self.sweep_breaches),
            login_journal.head(),
            files_journal.head(),
            login_journal.stats.outbox_delivered,
            files_journal.stats.applied,
        )


@pytest.fixture(scope="module")
def chaos_soak():
    world = JournalChaosWorld()
    world.plan = world.run()
    return world


def test_journal_soak_fired_both_fault_points(chaos_soak):
    stats = chaos_soak.chaos.stats
    assert stats.journal_crashes >= 2
    assert stats.restarts == stats.crashes
    assert stats.messages_dropped >= 1
    assert chaos_soak.counts["enter"] >= 50
    assert chaos_soak.counts["revoke"] >= 20


def test_journal_soak_loses_no_notification(chaos_soak):
    """The exactly-once conservation sweep held every second of the run
    and at the end: every notification is delivered-and-applied-once or
    parked in the DLQ — never vanished, never double-applied."""
    assert chaos_soak.sweep_breaches == []
    assert chaos_soak.store.conservation_breaches() == []
    assert chaos_soak.store.journal("Login").stats.outbox_delivered >= 1


def test_journal_soak_never_violates_fail_closed(chaos_soak):
    assert chaos_soak.checker.checks >= DURATION
    assert chaos_soak.checker.violations == [], "\n".join(
        str(v) for v in chaos_soak.checker.violations
    )


def test_journal_soak_converges_after_faults_cease(chaos_soak):
    assert chaos_soak.checker.converged(), chaos_soak.checker.divergences()
    assert chaos_soak.store.journal("Login").unsettled() == []


def test_journal_soak_recovered_by_replay_not_resubscribe(chaos_soak):
    login_journal = chaos_soak.store.journal("Login")
    files_journal = chaos_soak.store.journal("Files")
    assert login_journal.stats.replays + files_journal.stats.replays >= 2
    # journaled recovery never falls back to the resubscribe path
    assert chaos_soak.net.stats.subscribes_batched == 0


def test_journal_soak_replays_identically():
    """Same seed, same world: the durability soak is deterministic —
    journal heads, delivery counts and fault stats all replay exactly."""

    def fingerprint():
        world = JournalChaosWorld()
        world.run()
        return world.fingerprint()

    assert fingerprint() == fingerprint()
