"""Seeded 4-shard soak with a shard-kill event (ISSUE 7).

A :class:`~repro.core.sharding.CredentialFleet` of four leaders (each
with one follower replica) runs under the PR-5 chaos harness while a
driver enters, validates and revokes roles through the fleet facade.
One shard is crash-restarted mid-soak.  Asserted throughout:

* **zero fail-closed violations** — no surrogate grants past the stale
  bound, swept by :class:`~repro.runtime.faults.InvariantChecker`;
* **ring rebalance** — while the shard is down, placements it owns
  route to ring successors (and are counted as reroutes); after the
  restart, placement snaps back to ring ownership;
* **queue bounds** — no wire queue outgrows its ``max_queue`` even with
  the kill interleaved with flush traffic.

Run directly (CI chaos-smoke does) or via pytest.
"""

import random

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.sharding import CredentialFleet, CredentialShard
from repro.core.types import ObjectType
from repro.errors import OasisError
from repro.runtime.clock import SimClock
from repro.runtime.faults import ChaosController, FaultPlan, InvariantChecker
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WirePolicy

SEED = 20260808
SHARDS = 4
DURATION = 30.0
SETTLE = 25.0
MAX_OUTAGE = 4.0
PERIOD = 0.5
GRACE = 2.0
STALE_BOUND = MAX_OUTAGE + (GRACE + 1.0) * PERIOD + 3.0

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

CHAIN_RDL = """
import Login0.userid
Member(u) <- Login0.LoggedOn(u, h)*
"""


def build_fleet_world():
    sim = Simulator()
    net = Network(sim, seed=SEED, default_delay=0.01)
    clock = SimClock(sim)
    registry = ServiceRegistry()
    linkage = SimLinkage(
        net, policy=WirePolicy(max_batch=64, max_delay=0.05, max_queue=64)
    )
    leaders = []
    for index in range(SHARDS):
        svc = OasisService(
            f"Login{index}", registry=registry, linkage=linkage, clock=clock
        )
        svc.export_type(ObjectType(f"Login{index}.userid"), "userid")
        svc.add_rolefile("main", LOGIN_RDL)
        leaders.append(svc)
    # cross-shard subscription graph: every other shard consumes Login0
    # roles, so revocations issued at shard 0 must propagate fleet-wide
    for index in range(1, SHARDS):
        leaders[index].add_rolefile("chain", CHAIN_RDL)
        linkage.monitor(leaders[0], leaders[index], period=PERIOD, grace=GRACE)
    fleet = CredentialFleet(
        [CredentialShard(leader, followers=1) for leader in leaders]
    )
    return sim, net, linkage, leaders, fleet


def test_shard_kill_soak_fail_closed_and_rebalance():
    sim, net, linkage, leaders, fleet = build_fleet_world()
    sim.run_until(1.0)
    services = {leader.name: leader for leader in leaders}
    host = HostOS("shard-soak-host")
    rng = random.Random(SEED)
    probe_keys = [f"probe{i}" for i in range(32)]
    assert {fleet.router.owner(k) for k in probe_keys} == set(services), (
        "probe keys must cover every shard"
    )

    plan = FaultPlan.random(
        seed=SEED,
        duration=DURATION,
        addresses=tuple(f"oasis:Login{i}" for i in range(SHARDS)),
        services=tuple(f"Login{i}" for i in range(SHARDS)),
        link_flaps=3,
        partitions=1,
        loss_bursts=3,
        duplication_windows=2,
        reorder_windows=2,
        crashes=1,
        max_outage=MAX_OUTAGE,
    )
    kill_events = []

    def crash(name):
        linkage.crash(services[name])
        fleet.mark_down(name)
        owned = [key for key in probe_keys if fleet.router.owner(key) == name]
        # rebalance: every key the dead shard owns routes to a live
        # ring successor the moment the shard is marked down
        for key in owned:
            assert fleet.router.route(key) != name
        kill_events.append((name, len(owned)))

    def restart(name):
        linkage.restart(services[name])
        fleet.mark_up(name)
        # placement snaps back to ring ownership once the shard returns
        for key in probe_keys:
            if name == fleet.router.owner(key):
                assert fleet.router.route(key) == name

    chaos = ChaosController(net, plan, crash=crash, restart=restart)
    checker = InvariantChecker(
        leaders,
        stale_bound=STALE_BOUND,
        is_down=chaos.is_down,
        channels=linkage.all_channels,
    )
    chaos.arm()

    sessions = []

    def do_op():
        code = rng.randrange(4)
        try:
            if code == 0:
                # key-routed placement through the ring (live shards only)
                domain = host.create_domain()
                user = f"user{len(sessions)}"
                shard = fleet.shard_for(user)
                if chaos.is_down(shard.name):
                    return
                cert = shard.enter_role(
                    domain.client_id, "LoggedOn", (user, "soak-host")
                )
                sessions.append({"client": domain.client_id, "cert": cert,
                                 "member": None})
            elif code == 1 and sessions:
                session = rng.choice(sessions)
                if not chaos.is_down(session["cert"].issuer):
                    fleet.validate(session["cert"])
            elif code == 2 and not chaos.is_down("Login0"):
                # cross-shard chain: base at shard 0, member elsewhere
                domain = host.create_domain()
                base = leaders[0].enter_role(
                    domain.client_id, "LoggedOn", (f"c{len(sessions)}", "soak-host")
                )
                consumer = leaders[rng.randrange(1, SHARDS)]
                member = None
                if not chaos.is_down(consumer.name):
                    member = consumer.enter_role(
                        domain.client_id, "Member",
                        credentials=(base,), rolefile_id="chain",
                    )
                sessions.append({"client": domain.client_id, "cert": base,
                                 "member": (consumer, member)})
            elif code == 3 and sessions:
                session = rng.choice(sessions)
                if not chaos.is_down(session["cert"].issuer):
                    sessions.remove(session)
                    services[session["cert"].issuer].exit_role(session["cert"])
        except OasisError:
            pass    # individual denials/sheds are fine; safety is asserted below

    ops = 80
    spacing = DURATION / ops
    for index in range(ops):
        sim.schedule_at(1.2 + index * spacing, do_op)
    for tick in range(int(DURATION + SETTLE)):
        sim.schedule_at(1.6 + tick, checker.check_fail_closed)
        sim.schedule_at(1.7 + tick, checker.check_queue_bounds)
    end = max(plan.horizon(), DURATION) + SETTLE
    sim.schedule_at(max(plan.horizon(), DURATION) + 0.5, chaos.disarm)
    sim.run_until(end)

    assert kill_events, "the fault plan never killed a shard"
    assert checker.violations == [], (
        f"fail-closed violations under shard kill: {checker.violations}"
    )
    assert checker.checks > 0
    # after the dust settles every probe key is served by its ring owner
    for key in probe_keys:
        assert fleet.router.route(key) == fleet.router.owner(key)
    # fleet stayed live through the kill: entries continued on other shards
    assert sum(shard.stats.writes for shard in fleet.shards.values()) > 0


if __name__ == "__main__":
    test_shard_kill_soak_fail_closed_and_rebalance()
    print("shard soak: ok")
