"""Tests for the simulated badge hardware (section 6.3's substrate)."""

import pytest

from repro.badge.hardware import Badge, BadgeWorld
from repro.runtime.simulator import Simulator


def make_world(beacon_period=0.0):
    sim = Simulator()
    world = BadgeWorld(sim, beacon_period=beacon_period)
    world.add_room("T14", "lab")
    world.add_room("T15", "lab")
    world.add_badge(Badge("b1", "lab"))
    sightings = []
    world.attach_site("lab", lambda badge, sensor: sightings.append((badge, sensor)))
    return sim, world, sightings


def test_move_produces_immediate_sighting():
    sim, world, sightings = make_world()
    world.move("b1", "T14")
    assert sightings == [("b1", "sensor-T14")]


def test_location_tracked():
    sim, world, sightings = make_world()
    assert world.location("b1") is None
    world.move("b1", "T14")
    assert world.location("b1") == "T14"
    world.remove("b1")
    assert world.location("b1") is None


def test_periodic_beacon_while_stationary():
    """Like the hardware: a stationary badge keeps broadcasting."""
    sim, world, sightings = make_world(beacon_period=1.0)
    world.move("b1", "T14")
    sim.run_until(5.5)
    assert len(sightings) >= 5
    assert all(s == ("b1", "sensor-T14") for s in sightings)


def test_beacon_stops_after_leaving():
    sim, world, sightings = make_world(beacon_period=1.0)
    world.move("b1", "T14")
    sim.run_until(2.5)
    world.remove("b1")
    count = len(sightings)
    sim.run_until(10.0)
    assert len(sightings) == count


def test_beacon_follows_badge_between_rooms():
    sim, world, sightings = make_world(beacon_period=1.0)
    world.move("b1", "T14")
    sim.run_until(1.5)
    world.move("b1", "T15")
    sim.run_until(4.0)
    rooms = {sensor for _, sensor in sightings}
    assert rooms == {"sensor-T14", "sensor-T15"}
    # no stale T14 beacons after the move
    late = [s for s in sightings if s[1] == "sensor-T14"]
    assert len(late) <= 2


def test_interrogate_home():
    sim, world, sightings = make_world()
    assert world.interrogate_home("b1") == "lab"


def test_unknown_badge_and_room_rejected():
    sim, world, sightings = make_world()
    with pytest.raises(KeyError):
        world.move("ghost", "T14")
    with pytest.raises(KeyError):
        world.move("b1", "nowhere")


def test_move_at_schedules_on_simulator():
    sim, world, sightings = make_world()
    world.move_at(3.0, "b1", "T14")
    assert sightings == []
    sim.run()
    assert sightings == [("b1", "sensor-T14")]
    assert sim.now == 3.0


def test_move_at_without_simulator_rejected():
    world = BadgeWorld()
    world.add_room("T14", "lab")
    world.add_badge(Badge("b1", "lab"))
    with pytest.raises(RuntimeError):
        world.move_at(1.0, "b1", "T14")
