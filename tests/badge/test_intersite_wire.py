"""The inter-site badge protocol over the batched wire transport.

Same fig 6.2 semantics as the direct SiteDirectory path, but sightings,
naming replies and badge-left clean-ups travel as coalescing wire
batches between ``badge:<site>`` endpoints.
"""

import pytest

from repro.badge.hardware import Badge, BadgeWorld
from repro.badge.intersite import MOVED_SITE, SightingStream, SiteDirectory
from repro.badge.site import Site
from repro.events.model import WILDCARD, template
from repro.runtime.clock import SimClock
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WirePolicy


class WiredWorld:
    """Three sites joined by a network; inter-site badge traffic streams."""

    def __init__(self, policy=None):
        self.sim = Simulator()
        self.net = Network(self.sim, seed=6, default_delay=0.001)
        self.clock = SimClock(self.sim)
        self.directory = SiteDirectory()
        self.sites = {}
        self.streams = {}
        rooms = {"cambridge": ("T14", "T15"), "parc": ("P1",), "oslo": ("O1",)}
        self.world = BadgeWorld(self.sim)
        for name, site_rooms in rooms.items():
            site = Site(name, self.directory, clock=self.clock, simulator=self.sim)
            self.sites[name] = site
            self.streams[name] = SightingStream(self.net, site, policy=policy)
            for room in site_rooms:
                self.world.add_room(room, name)
                site.add_sensor(f"sensor-{room}", room)
            site.attach_hardware(self.world)
        self.rjh = Badge("badge-rjh", "cambridge")
        self.world.add_badge(self.rjh)
        self.sites["cambridge"].register_home_badge("badge-rjh", "rjh21")


@pytest.fixture
def w():
    return WiredWorld()


def test_foreign_sighting_reaches_home_over_the_wire(w):
    w.world.move("badge-rjh", "P1")
    assert w.sites["cambridge"].location_of("badge-rjh") == "cambridge"  # in flight
    w.sim.run()
    assert w.sites["cambridge"].location_of("badge-rjh") == "parc"


def test_naming_info_streams_back_to_visited_site(w):
    w.world.move("badge-rjh", "P1")
    w.sim.run()
    assert w.sites["parc"].knows_badge("badge-rjh")
    assert w.sites["parc"].namer.user_of("badge-rjh") == "rjh21"


def test_moved_site_signalled_at_home(w):
    got = []
    cam = w.sites["cambridge"]
    session = cam.broker.establish_session(lambda e, h: got.append(e) if e else None)
    cam.broker.register(session, template("MovedSite", WILDCARD, WILDCARD, WILDCARD))
    w.world.move("badge-rjh", "P1")
    w.sim.run()
    assert [e.args for e in got] == [("badge-rjh", "cambridge", "parc")]


def test_previous_site_cleaned_up_via_wire(w):
    w.world.move("badge-rjh", "P1")
    w.sim.run()
    assert w.sites["parc"].knows_badge("badge-rjh")
    w.world.move("badge-rjh", "O1")
    w.sim.run()
    # oslo learned the badge; parc deleted its copy (fig 6.2 step b)
    assert w.sites["oslo"].knows_badge("badge-rjh")
    assert not w.sites["parc"].knows_badge("badge-rjh")
    assert w.sites["cambridge"].location_of("badge-rjh") == "oslo"


def test_repeat_sightings_coalesce_before_flush():
    """Several sightings of the same badge inside one batch window report
    home as a single payload (last-location-wins)."""
    w = WiredWorld(policy=WirePolicy(max_batch=1000, max_delay=0.05))
    before = w.net.stats.messages_sent
    # the sighting cache only signals NewBadge once, so drive the stream
    # directly: three sensors spot the badge within the window
    w.streams["parc"].report("badge-rjh", "cambridge")
    w.streams["parc"].report("badge-rjh", "cambridge")
    w.streams["parc"].report("badge-rjh", "cambridge")
    w.sim.run()
    seen_link = w.net.link_stats("badge:parc", "badge:cambridge")
    assert seen_link.messages_sent - 0 == 1
    assert w.net.stats.coalesced >= 2
    assert w.sites["cambridge"].location_of("badge-rjh") == "parc"


def test_unwired_site_falls_back_to_direct_calls():
    """A site without a stream interoperates with wired ones through the
    directory, exactly as before."""
    sim = Simulator()
    net = Network(sim, seed=6, default_delay=0.001)
    clock = SimClock(sim)
    directory = SiteDirectory()
    world = BadgeWorld(sim)
    cam = Site("cambridge", directory, clock=clock, simulator=sim)
    parc = Site("parc", directory, clock=clock, simulator=sim)
    SightingStream(net, parc)   # parc wired, cambridge NOT
    for room, site_name, site in (("T14", "cambridge", cam), ("P1", "parc", parc)):
        world.add_room(room, site_name)
        site.add_sensor(f"sensor-{room}", room)
    cam.attach_hardware(world)
    parc.attach_hardware(world)
    world.add_badge(Badge("badge-x", "cambridge"))
    cam.register_home_badge("badge-x", "xavier")
    world.move("badge-x", "P1")
    sim.run()
    # cambridge has no stream endpoint: parc's stream detects that and
    # uses the direct path
    assert cam.location_of("badge-x") == "parc"
    assert parc.knows_badge("badge-x")
