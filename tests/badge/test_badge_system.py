"""Tests for the active badge system (section 6.3)."""

import pytest

from repro.badge.hardware import Badge, BadgeWorld
from repro.badge.intersite import SiteDirectory
from repro.badge.site import Site
from repro.events.model import Event, Var, WILDCARD, template
from repro.runtime.clock import SimClock
from repro.runtime.simulator import Simulator


class World:
    """Two sites (cambridge, parc) with rooms and a couple of badges."""

    def __init__(self):
        self.sim = Simulator()
        self.clock = SimClock(self.sim)
        self.directory = SiteDirectory()
        self.cam = Site("cambridge", self.directory, clock=self.clock, simulator=self.sim)
        self.parc = Site("parc", self.directory, clock=self.clock, simulator=self.sim)
        self.world = BadgeWorld(self.sim)
        for room in ("T14", "T15"):
            self.world.add_room(room, "cambridge")
            self.cam.add_sensor(f"sensor-{room}", room)
        for room in ("P1", "P2"):
            self.world.add_room(room, "parc")
            self.parc.add_sensor(f"sensor-{room}", room)
        self.cam.attach_hardware(self.world)
        self.parc.attach_hardware(self.world)
        self.rjh = Badge("badge-rjh", "cambridge")
        self.world.add_badge(self.rjh)
        self.cam.register_home_badge("badge-rjh", "rjh21")


@pytest.fixture
def w():
    return World()


class TestIntraSite:
    def test_sighting_signals_seen_event(self, w):
        got = []
        session = w.cam.master.broker.establish_session(
            lambda e, h: got.append(e) if e else None
        )
        w.cam.master.broker.register(session, template("Seen", WILDCARD, WILDCARD))
        w.world.move("badge-rjh", "T14")
        assert [e.args for e in got] == [("badge-rjh", "sensor-T14")]

    def test_sighting_cache_tracks_current_badges(self, w):
        w.world.move("badge-rjh", "T14")
        assert w.cam.cache.current_badges() == {"badge-rjh"}
        assert w.cam.cache.last_sensor("badge-rjh") == "sensor-T14"

    def test_new_badge_signalled_once(self, w):
        got = []
        session = w.cam.cache.broker.establish_session(
            lambda e, h: got.append(e) if e else None
        )
        w.cam.cache.broker.register(session, template("NewBadge", WILDCARD))
        w.world.move("badge-rjh", "T14")
        w.world.move("badge-rjh", "T15")
        assert len(got) == 1

    def test_namer_lookups(self, w):
        assert w.cam.namer.badge_of("rjh21") == "badge-rjh"
        assert w.cam.namer.user_of("badge-rjh") == "rjh21"
        assert w.cam.namer.room_of("sensor-T14") == "T14"

    def test_namer_signals_updates(self, w):
        got = []
        session = w.cam.namer.broker.establish_session(
            lambda e, h: got.append(e) if e else None
        )
        w.cam.namer.broker.register(session, template("OwnsBadge", WILDCARD, WILDCARD))
        w.cam.namer.insert("OwnsBadge", ("jmb", "badge-jmb"))
        assert [e.args for e in got] == [("jmb", "badge-jmb")]

    def test_badge_replacement(self, w):
        """Section 6.3.3: changing the badge associated with a user."""
        w.cam.namer.replace("OwnsBadge", ("rjh21",), ("rjh21", "badge-new"))
        assert w.cam.namer.badge_of("rjh21") == "badge-new"

    def test_db_register_closes_the_race(self, w):
        """The atomic lookup+register of section 6.3.3: existing tuples
        arrive as events, and later inserts too — nothing is lost."""
        got = []
        session = w.cam.namer.broker.establish_session(
            lambda e, h: got.append(e) if e else None
        )
        replay, registration = w.cam.namer.db_register(
            session, template("OwnsBadge", "rjh21", Var("b"))
        )
        assert [e.args for e in replay] == [("rjh21", "badge-rjh")]
        # the database changes: the event arrives through the same session
        w.cam.namer.replace("OwnsBadge", ("rjh21",), ("rjh21", "badge-new"))
        assert ("rjh21", "badge-new") in [e.args for e in got]

    def test_db_register_unknown_relation(self, w):
        from repro.errors import EventError
        session = w.cam.namer.broker.establish_session(lambda e, h: None)
        with pytest.raises(EventError):
            w.cam.namer.db_register(session, template("Nope", WILDCARD))


class TestInterSite:
    def test_foreign_badge_acquires_naming_info(self, w):
        w.world.move("badge-rjh", "P1")
        assert w.parc.knows_badge("badge-rjh")
        assert w.parc.namer.user_of("badge-rjh") == "rjh21"
        assert w.parc.namer.select("BadgeSite", ("badge-rjh", None)) == [
            ("badge-rjh", "cambridge")
        ]

    def test_home_site_always_knows_location(self, w):
        w.world.move("badge-rjh", "T14")
        assert w.cam.location_of("badge-rjh") == "cambridge"
        w.world.move("badge-rjh", "P1")
        assert w.cam.location_of("badge-rjh") == "parc"

    def test_moved_site_event_signalled(self, w):
        got = []
        session = w.cam.broker.establish_session(
            lambda e, h: got.append(e) if e else None
        )
        w.cam.broker.register(session, template("MovedSite", WILDCARD, WILDCARD, WILDCARD))
        w.world.move("badge-rjh", "T14")
        w.world.move("badge-rjh", "P1")
        assert [e.args for e in got] == [("badge-rjh", "cambridge", "parc")]

    def test_old_site_deletes_naming_info(self, w):
        """Fig 6.2(b): naming info at the previous site is deleted when
        the badge is seen at a third site."""
        directory = w.directory
        oxford = Site("oxford", directory, clock=w.clock, simulator=w.sim)
        w.world.add_room("O1", "oxford")
        oxford.attach_hardware(w.world)
        w.world.move("badge-rjh", "P1")
        assert w.parc.knows_badge("badge-rjh")
        w.world.move("badge-rjh", "O1")
        assert not w.parc.knows_badge("badge-rjh")
        assert oxford.knows_badge("badge-rjh")
        assert w.cam.location_of("badge-rjh") == "oxford"

    def test_return_home_cleans_up_remote(self, w):
        w.world.move("badge-rjh", "P1")
        w.world.move("badge-rjh", "T14")
        assert not w.parc.knows_badge("badge-rjh")
        assert w.cam.location_of("badge-rjh") == "cambridge"
        # the home site keeps its own naming info
        assert w.cam.namer.user_of("badge-rjh") == "rjh21"

    def test_private_site_withholds_owner(self, w):
        secret = Site("secret", w.directory, clock=w.clock, simulator=w.sim,
                      publish_owners=False)
        w.world.add_room("S1", "secret")
        secret.attach_hardware(w.world)
        w.world.add_badge(Badge("badge-spy", "secret"))
        secret.register_home_badge("badge-spy", "agent007")
        w.world.move("badge-spy", "T14")
        # cambridge sees the badge but learns no user name
        assert w.cam.cache.last_sensor("badge-spy") == "sensor-T14"
        assert w.cam.namer.user_of("badge-spy") is None


class TestCompositeOverBadges:
    def test_enters_event_via_detector(self, w):
        from repro.events.composite.detector import CompositeEventDetector

        detector = CompositeEventDetector(clock=w.clock)
        detector.connect(w.cam.master.broker)
        entries = []
        detector.watch(
            '$Seen("badge-rjh", s1); Seen("badge-rjh", s2) - Seen("badge-rjh", s1)',
            callback=lambda t, env: entries.append(env["s2"]),
        )
        def beat():
            w.cam.heartbeat()
            w.sim.schedule(1.0, beat)
        w.sim.schedule(0.5, beat)
        w.world.move_at(1.0, "badge-rjh", "T14")
        w.world.move_at(2.0, "badge-rjh", "T15")
        w.world.move_at(3.0, "badge-rjh", "T14")
        w.sim.run_until(10.0)
        assert entries == ["sensor-T15", "sensor-T14"]

    def test_trapped_after_fire_alarm(self, w):
        """The Trapped(P) example: alarm, then sightings before AllClear,
        named through the active database."""
        from repro.events.composite.detector import CompositeEventDetector

        detector = CompositeEventDetector(clock=w.clock)
        detector.connect(w.cam.master.broker)
        detector.connect_database(w.cam.namer)   # DBRegister integration
        alarm_broker = w.cam.broker   # reuse the site broker for Alarm
        detector.connect(alarm_broker)
        trapped = []
        detector.watch(
            "Alarm(); (Seen(B, S) - AllClear()); OwnsBadge(P, B)",
            callback=lambda t, env: trapped.append(env["P"]),
        )
        w.sim.schedule(1.0, lambda: alarm_broker.signal(Event("Alarm", ())))
        w.world.move_at(2.0, "badge-rjh", "T14")
        def beat():
            w.cam.heartbeat()
            w.sim.schedule(1.0, beat)
        w.sim.schedule(0.5, beat)
        w.sim.run_until(10.0)
        assert "rjh21" in trapped
