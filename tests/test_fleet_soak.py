"""Fleet-scale kernel soaks (ISSUE 9 acceptance).

Two complementary checks on the timer-wheel kernel at fleet scale:

* a 200-service profiled chaos soak — one Login issuer and 199 consumer
  services with live surrogates, heartbeat monitoring and a seeded fault
  plan — asserting zero fail-closed violations and that the profiling
  layer attributes the full event stream to the expected subsystems;

* byte-identical event ordering between the wheel kernel and the
  heap-only baseline: the *existing* chaos soak (tests/test_chaos_soak.py,
  same seed, same fault plan) and its invariant sweeps must replay
  event-for-event on both kernels.
"""

import hashlib

import pytest

from repro.baselines.heap_kernel import HeapSimulator
from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.runtime.clock import SimClock
from repro.runtime.faults import ChaosController, FaultPlan, InvariantChecker
from repro.runtime.network import Network
from repro.runtime.profile import SimProfile
from repro.runtime.simulator import Simulator

from tests.test_chaos_soak import (
    HEARTBEAT_GRACE,
    HEARTBEAT_PERIOD,
    MAX_OUTAGE,
    STALE_BOUND,
    SoakWorld,
)

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

CONSUMER_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

FLEET_SEED = 907
FLEET_SERVICES = 200           # 1 issuer + 199 consumers
FLEET_USERS = 60
FLEET_DURATION = 40.0          # fault window (virtual seconds)
FLEET_SETTLE = 20.0


class FleetWorld:
    """A 200-service fleet: one Login issuer, 199 consumers with
    monitored linkage and live surrogate credentials."""

    def __init__(self, seed=FLEET_SEED):
        self.sim = Simulator()
        self.net = Network(self.sim, seed=seed, default_delay=0.01)
        self.clock = SimClock(self.sim)
        self.registry = ServiceRegistry()
        self.linkage = SimLinkage(self.net)
        self.login = OasisService(
            "Login", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login.export_type(ObjectType("Login.userid"), "userid")
        self.login.add_rolefile("main", LOGIN_RDL)
        self.consumers = []
        for i in range(FLEET_SERVICES - 1):
            consumer = OasisService(
                f"Svc{i:03d}",
                registry=self.registry,
                linkage=self.linkage,
                clock=self.clock,
            )
            consumer.add_rolefile("main", CONSUMER_RDL)
            self.consumers.append(consumer)
        self.services = {"Login": self.login}
        self.services.update((c.name, c) for c in self.consumers)
        self.host = HostOS("fleet-host")

    def populate(self):
        """Log users in and spread Reader surrogates across the fleet."""
        import random

        rng = random.Random(f"fleet-pop:{FLEET_SEED}")
        self._rng = rng
        self.surrogate_consumers = set()
        self.sessions = []
        self.next_user = 0
        for _ in range(FLEET_USERS):
            self._login_one()
        # heartbeat-monitor the whole fleet: every consumer watches the
        # issuer so Unknown marking works wherever surrogates live.  Done
        # exactly once — monitor() builds a fresh sender/monitor pair, and
        # a replaced monitor's watchdog would keep suspecting forever.
        for consumer in self.consumers:
            self.linkage.monitor(
                self.login,
                consumer,
                period=HEARTBEAT_PERIOD,
                grace=HEARTBEAT_GRACE,
            )

    def _login_one(self):
        user = f"u{self.next_user}"
        self.next_user += 1
        domain = self.host.create_domain()
        cert = self.login.enter_role(
            domain.client_id, "LoggedOn", (user, "fleet-host")
        )
        for consumer in self._rng.sample(self.consumers, 3):
            consumer.enter_role(domain.client_id, "Reader", credentials=(cert,))
            self.surrogate_consumers.add(consumer.name)
        self.sessions.append(cert)

    def churn(self):
        """One session cycles: oldest user out (revocation cascade to its
        three consumers), a fresh user in."""
        from repro.errors import OasisError

        try:
            if self.sessions and not self.chaos.is_down("Login"):
                self.login.exit_role(self.sessions.pop(0))
            if not self.chaos.is_down("Login"):
                self._login_one()
        except OasisError:
            pass  # a consumer crashed mid-cascade; safety is swept separately

    def run(self, profile=None):
        if profile is not None:
            profile.attach(self.sim)
        plan = FaultPlan.random(
            seed=FLEET_SEED,
            duration=FLEET_DURATION,
            addresses=tuple(
                SimLinkage.address_of(n)
                for n in list(self.services)[:24]
            ),
            services=tuple(list(self.services)[:24]),
            link_flaps=4,
            partitions=2,
            loss_bursts=3,
            duplication_windows=2,
            reorder_windows=2,
            crashes=2,
            max_outage=MAX_OUTAGE,
        )
        self.chaos = ChaosController(
            self.net,
            plan,
            crash=lambda name: self.linkage.crash(self.services[name]),
            restart=lambda name: self.linkage.restart(self.services[name]),
        )
        self.checker = InvariantChecker(
            list(self.services.values()),
            stale_bound=STALE_BOUND,
            is_down=self.chaos.is_down,
        )
        self.chaos.arm()
        sweeps = int(FLEET_DURATION + FLEET_SETTLE)
        for i in range(sweeps):
            self.sim.schedule_at(1.0 + i, self.checker.check_fail_closed)
        for i in range(int(FLEET_DURATION)):
            self.sim.schedule_at(0.7 + i, self.churn)
        end = max(plan.horizon(), FLEET_DURATION) + FLEET_SETTLE
        self.sim.schedule_at(
            max(plan.horizon(), FLEET_DURATION) + 1.0, self.chaos.disarm
        )
        self.sim.run_until(end)
        return plan


@pytest.fixture(scope="module")
def fleet():
    world = FleetWorld()
    world.populate()
    world.profile = SimProfile()
    world.run(profile=world.profile)
    return world


def test_fleet_soak_zero_fail_closed_violations(fleet):
    assert fleet.checker.checks >= FLEET_DURATION
    assert fleet.checker.violations == [], "\n".join(
        str(v) for v in fleet.checker.violations
    )
    assert fleet.checker.converged(), fleet.checker.divergences()


def test_fleet_soak_actually_exercised_the_fleet(fleet):
    stats = fleet.chaos.stats
    assert stats.partitions >= 1 and stats.heals == stats.partitions
    assert stats.crashes >= 1 and stats.restarts == stats.crashes
    # heartbeat chains ran fleet-wide for the whole soak
    assert len(fleet.linkage._monitors) > 100
    assert fleet.sim.events_processed > 10_000


def test_fleet_soak_profile_attributes_the_event_stream(fleet):
    report = fleet.profile.report()
    assert report["total_events"] == fleet.sim.events_processed
    # the big three subsystems of a heartbeat-dominated fleet soak
    for subsystem in ("hb", "deliver", "flush"):
        assert subsystem in report["subsystems"], sorted(report["subsystems"])
    # heartbeats dominate event count in an idle-ish fleet
    assert report["subsystems"]["hb"]["events"] > report["total_events"] * 0.3
    shares = sum(r["events_share"] for r in report["subsystems"].values())
    assert abs(shares - 1.0) < 1e-9


# ------------------------------------------------- cross-kernel soak replay


def _traced_soak(sim_factory):
    """Run the existing chaos soak with a dispatch tracer; digest the
    full (time, name) event stream."""
    world = SoakWorld(sim_factory=sim_factory)
    digest = hashlib.blake2b(digest_size=16)
    world.sim.set_tracer(
        lambda time, name: digest.update(f"{time!r}|{name}\n".encode())
    )
    world.run()
    return world, digest.hexdigest()


def test_existing_chaos_soak_is_byte_identical_across_kernels():
    """ISSUE 9 acceptance: same seed -> same events_processed, same event
    ordering (digest over every dispatch), same invariant sweep results,
    on the wheel kernel and the heap-only baseline."""
    wheel, wheel_digest = _traced_soak(Simulator)
    heap, heap_digest = _traced_soak(HeapSimulator)
    assert wheel_digest == heap_digest
    assert wheel.sim.events_processed == heap.sim.events_processed
    assert wheel.checker.checks == heap.checker.checks
    assert len(wheel.checker.violations) == len(heap.checker.violations)
    assert wheel.checker.divergences() == heap.checker.divergences()
    assert wheel.counts == heap.counts
    assert wheel.denials == heap.denials
    assert wheel.net.stats == heap.net.stats
