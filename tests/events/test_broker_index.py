"""The signal() routing index and retro-replay buffer index.

These pin the *semantics* of the indexed hot path: bucketing by event
type with literal-first-parameter sub-buckets must never change which
sessions are notified, only how many registrations are examined; the
per-name replay index must honour the exact ``timestamp >= since``
boundary and the retention window.
"""

import pytest

from repro.errors import RegistrationError
from repro.events.broker import EventBroker
from repro.events.model import WILDCARD, Event, Template, Var, template
from repro.runtime.clock import ManualClock


def make_broker(**kwargs):
    clock = ManualClock(1.0)
    return clock, EventBroker("P", clock=clock, **kwargs)


class Collector:
    def __init__(self):
        self.events = []

    def __call__(self, event, horizon):
        if event is not None:
            self.events.append(event)


class TestRoutingIndex:
    def test_non_matching_names_never_examined(self):
        clock, broker = make_broker()
        session = broker.establish_session(Collector())
        for i in range(50):
            broker.register(session, template(f"Other{i}", WILDCARD))
        got = Collector()
        watcher = broker.establish_session(got)
        broker.register(watcher, template("Hot", WILDCARD))
        broker.signal(Event("Hot", (1,)))
        assert [e.args for e in got.events] == [(1,)]
        # only the Hot bucket was touched; the 50 decoys were skipped
        assert broker.stats.routing_candidates == 1
        assert broker.stats.routing_skipped == 50

    def test_literal_first_param_subbucket(self):
        clock, broker = make_broker()
        sessions = []
        for name in ("b1", "b2", "b3"):
            got = Collector()
            s = broker.establish_session(got)
            broker.register(s, template("Seen", name, WILDCARD))
            sessions.append(got)
        broker.signal(Event("Seen", ("b2", "s1")))
        assert [len(g.events) for g in sessions] == [0, 1, 0]
        # only the ("Seen", "b2") sub-bucket was examined
        assert broker.stats.routing_candidates == 1
        assert broker.stats.routing_skipped == 2

    def test_wildcard_and_var_templates_see_literal_events(self):
        clock, broker = make_broker()
        wild, var = Collector(), Collector()
        broker.register(broker.establish_session(wild), template("Seen", WILDCARD))
        broker.register(broker.establish_session(var), template("Seen", Var("x")))
        broker.signal(Event("Seen", ("b1",)))
        assert len(wild.events) == 1 and len(var.events) == 1

    def test_unhashable_first_argument_routes_generically(self):
        clock, broker = make_broker()
        got = Collector()
        broker.register(broker.establish_session(got), template("Odd", WILDCARD))
        broker.signal(Event("Odd", ([1, 2],)))   # list: unhashable
        assert len(got.events) == 1

    def test_unhashable_literal_template_param_still_matches(self):
        clock, broker = make_broker()
        got = Collector()
        broker.register(broker.establish_session(got), template("Odd", [1, 2]))
        broker.signal(Event("Odd", ([1, 2],)))
        broker.signal(Event("Odd", ([3],)))
        assert [e.args for e in got.events] == [([1, 2],)]

    def test_template_subclass_with_custom_match_is_catch_all(self):
        class Anything(Template):
            def __init__(self):
                super().__init__("*", ())

            def match(self, event, env=None):
                return {}

        clock, broker = make_broker()
        got = Collector()
        broker.register(broker.establish_session(got), Anything())
        broker.signal(Event("Whatever", (1, 2)))
        assert len(got.events) == 1

    def test_deregister_removes_from_index(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        registration = broker.register(session, template("Seen", "b1"))
        broker.deregister(registration)
        broker.signal(Event("Seen", ("b1",)))
        assert got.events == []
        assert registration.id not in session.registrations

    def test_close_session_drops_only_own_registrations(self):
        clock, broker = make_broker()
        keep, drop = Collector(), Collector()
        keeper = broker.establish_session(keep)
        leaver = broker.establish_session(drop)
        broker.register(keeper, template("Seen", WILDCARD))
        for i in range(10):
            broker.register(leaver, template("Seen", WILDCARD))
        broker.close_session(leaver)
        broker.signal(Event("Seen", ("b1",)))
        assert len(keep.events) == 1 and drop.events == []
        assert leaver.registrations == set()
        # the survivor is the only registration left to examine
        assert broker.stats.routing_candidates == 1

    def test_narrow_moves_between_buckets(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.register(session, template("Seen", WILDCARD))
        broker.narrow(pre, template("Seen", "b2"))
        broker.signal(Event("Seen", ("b1",)))
        broker.signal(Event("Seen", ("b2",)))
        assert [e.args for e in got.events] == [("b2",)]


class TestRetroReplayBoundaries:
    def test_event_at_exactly_since_is_replayed(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b")))
        clock.advance(1.0)                     # t=2
        broker.signal(Event("Seen", ("at",)))  # stamped exactly 2.0
        clock.advance(0.5)
        replay = broker.retro_register(pre, since=2.0)
        assert [e.args for e in replay] == [("at",)]

    def test_event_just_before_since_is_not_replayed(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b")))
        clock.advance(1.0)                       # t=2
        broker.signal(Event("Seen", ("old",)))
        clock.advance(1.0)                       # t=3
        broker.signal(Event("Seen", ("new",)))
        replay = broker.retro_register(pre, since=2.5)
        assert [e.args for e in replay] == [("new",)]

    def test_events_expired_from_buffer_are_not_replayed(self):
        clock = ManualClock(1.0)
        broker = EventBroker("P", clock=clock, retention=5.0)
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b")))
        broker.signal(Event("Seen", ("doomed",)))   # t=1
        clock.advance(4.0)                          # t=5
        broker.signal(Event("Seen", ("kept",)))
        clock.advance(2.0)                          # t=7: 1 < 7-5 expires
        replay = broker.retro_register(pre, since=0.0)
        assert [e.args for e in replay] == [("kept",)]
        assert broker.buffered() == 1

    def test_narrow_after_preregistration_affects_replay(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b"), WILDCARD))
        broker.signal(Event("Seen", ("b1", "s1")))
        broker.signal(Event("Seen", ("b2", "s1")))
        broker.narrow(pre, template("Seen", "b1", WILDCARD))
        replay = broker.retro_register(pre, since=0.0)
        assert [e.args for e in replay] == [("b1", "s1")]
        assert [e.args for e in got.events] == [("b1", "s1")]
        # after retro_register the narrowed registration is live
        broker.signal(Event("Seen", ("b1", "s2")))
        broker.signal(Event("Seen", ("b2", "s2")))
        assert [e.args for e in got.events] == [("b1", "s1"), ("b1", "s2")]

    def test_replay_index_skips_other_names(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Rare", Var("x")))
        for i in range(100):
            broker.signal(Event("Common", (i,)))
        broker.signal(Event("Rare", ("hit",)))
        replay = broker.retro_register(pre, since=0.0)
        assert [e.args for e in replay] == [("hit",)]
        # the 100 Common events were never examined
        assert broker.stats.replay_scanned == 1

    def test_retro_register_on_dead_registration_raises(self):
        clock, broker = make_broker()
        session = broker.establish_session(Collector())
        pre = broker.preregister(session, template("Seen", WILDCARD))
        broker.close_session(session)
        with pytest.raises(RegistrationError):
            broker.retro_register(pre, since=0.0)

    def test_out_of_order_stamps_fall_back_to_linear_scan(self):
        """Explicitly-stamped events can regress; replay must stay exact."""
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b")))
        clock.advance(9.0)  # t=10, retention 60 keeps everything
        broker.signal(Event("Seen", ("late",), timestamp=8.0, source="x"))
        broker.signal(Event("Seen", ("early",), timestamp=3.0, source="x"))
        replay = broker.retro_register(pre, since=5.0)
        assert [e.args for e in replay] == [("late",)]
