"""Tests for the composite event detector (sections 6.7-6.8, fig 6.4)."""

import pytest

from repro.events.broker import EventBroker
from repro.events.composite.detector import CompositeEventDetector
from repro.events.model import Event
from repro.runtime.clock import SimClock
from repro.runtime.simulator import Simulator


def test_watch_collects_occurrences():
    detector = CompositeEventDetector()
    watch = detector.watch("A; B")
    detector.post(Event("A", (), timestamp=1.0))
    detector.post(Event("B", (), timestamp=2.0))
    assert [t for t, _ in watch.occurrences] == [2.0]


def test_watch_callback():
    detector = CompositeEventDetector()
    hits = []
    detector.watch("$A(x)", callback=lambda t, env: hits.append((t, env["x"])))
    detector.post(Event("A", (1,), timestamp=1.0))
    detector.post(Event("A", (2,), timestamp=2.0))
    assert hits == [(1.0, 1), (2.0, 2)]


def test_cancel_watch():
    detector = CompositeEventDetector()
    watch = detector.watch("A")
    watch.cancel()
    detector.post(Event("A", (), timestamp=1.0))
    assert watch.occurrences == []


def test_connected_broker_feeds_detector():
    sim = Simulator()
    clock = SimClock(sim)
    broker = EventBroker("badges", clock=clock, simulator=sim)
    detector = CompositeEventDetector(clock=clock)
    detector.connect(broker)
    watch = detector.watch("Seen(b, r)")
    sim.schedule(1.0, lambda: broker.signal(Event("Seen", ("b1", "T14"))))
    sim.run()
    assert [t for t, _ in watch.occurrences] == [1.0]
    assert watch.occurrences[0][1]["b"] == "b1"


def test_horizon_from_broker_heartbeats_decides_without():
    sim = Simulator()
    clock = SimClock(sim)
    broker = EventBroker("src", clock=clock, simulator=sim)
    detector = CompositeEventDetector(clock=clock)
    detector.connect(broker)
    watch = detector.watch("A - B")
    sim.schedule(1.0, lambda: broker.signal(Event("A", ())))
    sim.run()
    assert watch.occurrences == []       # held: horizon still at 1.0
    sim.schedule(0.0, broker.heartbeat)  # now sim.now is past 1.0? schedule ahead
    sim.schedule(1.0, broker.heartbeat)
    sim.run()
    assert [t for t, _ in watch.occurrences] == [1.0]


class TestFig64DelayScenario:
    """Fig 6.4: Roger and Giles are seen first in room T14 (whose sensor
    is delayed), then in room T15.  A monitoring application watches each
    room.  The independent detector signals the T15 meeting as soon as
    its events arrive; the global-view detector must process events in
    timestamp order, so the delayed T14 sensor blocks *everything* and
    the first meeting is (eventually) detected first.  Both ultimately
    return the same results."""

    def scenario(self, mode):
        sim = Simulator()
        clock = SimClock(sim)
        t14 = EventBroker("T14", clock=clock, simulator=sim)   # delayed sensor
        t15 = EventBroker("T15", clock=clock, simulator=sim)
        detector = CompositeEventDetector(clock=clock, mode=mode)
        detector.connect(t14, delay=10.0)
        detector.connect(t15, delay=0.01)
        detections = []   # (room, detected_at_wallclock)
        for room in ("T14", "T15"):
            detector.watch(
                f'Seen("roger", "{room}"); Seen("giles", "{room}")',
                callback=lambda t, env, room=room: detections.append((room, sim.now)),
            )
        sim.schedule(1.0, lambda: t14.signal(Event("Seen", ("roger", "T14"))))
        sim.schedule(2.0, lambda: t14.signal(Event("Seen", ("giles", "T14"))))
        sim.schedule(3.0, lambda: t15.signal(Event("Seen", ("roger", "T15"))))
        sim.schedule(4.0, lambda: t15.signal(Event("Seen", ("giles", "T15"))))

        def beat():
            t14.heartbeat()
            t15.heartbeat()
            sim.schedule(1.0, beat)

        sim.schedule(0.5, beat)
        sim.run_until(40.0)
        return dict(reversed(detections)), [room for room, _ in detections]

    def test_independent_mode_detects_second_meeting_first(self):
        at, order = self.scenario("independent")
        assert order == ["T15", "T14"]
        assert at["T15"] < 5.0            # promptly, despite T14's delay
        assert at["T14"] >= 11.0          # once the delayed events arrive

    def test_global_view_detects_first_meeting_first(self):
        at, order = self.scenario("global-view")
        assert order == ["T14", "T15"]
        assert at["T15"] > 10.0           # blocked on the slow sensor

    def test_both_modes_return_the_same_results(self):
        _, independent = self.scenario("independent")
        _, global_view = self.scenario("global-view")
        assert set(independent) == set(global_view) == {"T14", "T15"}


def test_tick_drives_delay_budget():
    from repro.runtime.clock import ManualClock
    clock = ManualClock(0.0)
    detector = CompositeEventDetector(clock=clock)
    watch = detector.watch("A - B {delay = 5.0}")
    clock.advance(1.0)
    detector.tick()
    detector.post(Event("A", (), timestamp=1.0))
    assert watch.occurrences == []
    clock.advance(10.0)
    detector.tick()
    assert [t for t, _ in watch.occurrences] == [1.0]
