"""Unit tests for events, types and template matching (section 6.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EventError
from repro.events.idl import Interface, parse_idl
from repro.events.model import WILDCARD, Event, EventType, Template, Var, template


class TestEventType:
    def test_make_and_decode(self):
        finished = EventType("Finished", ("jobno",))
        event = finished.make(27, timestamp=3.0, source="P")
        assert event.name == "Finished"
        assert finished.decode(event) == (27,)
        assert event.timestamp == 3.0

    def test_arity_checked(self):
        finished = EventType("Finished", ("jobno",))
        with pytest.raises(ValueError):
            finished.make(1, 2)

    def test_decode_wrong_type(self):
        finished = EventType("Finished", ("jobno",))
        with pytest.raises(ValueError):
            finished.decode(Event("Other", (1,)))


class TestTemplateMatching:
    def test_literal_match(self):
        t = template("Finished", 27)
        assert t.match(Event("Finished", (27,))) == {}
        assert t.match(Event("Finished", (28,))) is None

    def test_wildcard_matches_anything(self):
        t = template("Finished", WILDCARD)
        assert t.match(Event("Finished", (99,))) == {}

    def test_type_name_must_match(self):
        t = template("Finished", WILDCARD)
        assert t.match(Event("Started", (99,))) is None

    def test_arity_must_match(self):
        t = template("E", WILDCARD)
        assert t.match(Event("E", (1, 2))) is None

    def test_variable_binds(self):
        t = template("Seen", Var("b"), Var("r"))
        env = t.match(Event("Seen", ("badge12", "T14")))
        assert env == {"b": "badge12", "r": "T14"}

    def test_bound_variable_must_agree(self):
        t = template("Seen", Var("b"), Var("r"))
        assert t.match(Event("Seen", ("b1", "T14")), {"b": "b1"}) is not None
        assert t.match(Event("Seen", ("b2", "T14")), {"b": "b1"}) is None

    def test_repeated_variable_within_template(self):
        t = template("Pair", Var("x"), Var("x"))
        assert t.match(Event("Pair", (1, 1))) == {"x": 1}
        assert t.match(Event("Pair", (1, 2))) is None

    def test_env_not_mutated(self):
        t = template("E", Var("x"))
        env = {}
        t.match(Event("E", (5,)), env)
        assert env == {}

    def test_substitute(self):
        t = template("Seen", Var("b"), Var("r"))
        ground = t.substitute({"b": "badge12"})
        assert ground.params == ("badge12", Var("r"))

    def test_is_ground(self):
        assert template("E", 1, "a").is_ground()
        assert not template("E", Var("x")).is_ground()
        assert not template("E", WILDCARD).is_ground()

    def test_overlaps(self):
        assert template("E", 1, Var("x")).overlaps(template("E", Var("y"), 2))
        assert not template("E", 1).overlaps(template("E", 2))
        assert not template("E", 1).overlaps(template("F", 1))

    @given(st.tuples(st.integers(), st.integers()))
    def test_match_then_substitute_is_ground_match(self, args):
        t = template("E", Var("x"), Var("y"))
        event = Event("E", args)
        env = t.match(event)
        ground = t.substitute(env)
        assert ground.is_ground()
        assert ground.match(event) == {}


class TestInterface:
    def test_printer_interface(self):
        printer = Interface(
            "Printer",
            operations={"Print": ("file",), "Cancel": ("jobno",)},
            events={"Finished": ("jobno",), "Jammed": ()},
        )
        assert printer.has_events
        make = printer.constructor("Finished")
        decode = printer.destructor("Finished")
        event = make(27)
        assert decode(event) == (27,)
        assert make.__name__ == "Printer_Finished"
        assert decode.__name__ == "Decode_Printer_Finished"

    def test_unknown_event_rejected(self):
        printer = Interface("P", events={"Done": ()})
        with pytest.raises(EventError):
            printer.constructor("Nope")

    def test_operation_check(self):
        printer = Interface("P", operations={"Print": ("file",)})
        printer.check_operation("Print", ("thesis",))
        with pytest.raises(EventError):
            printer.check_operation("Print", ())
        with pytest.raises(EventError):
            printer.check_operation("Nope", ())

    def test_parse_idl(self):
        iface = parse_idl("""
            interface Printer {
                operation Print(file)
                operation Cancel(jobno)
                event Finished(jobno)
                event Jammed()
            }
        """)
        assert iface.name == "Printer"
        assert set(iface.operations) == {"Print", "Cancel"}
        assert set(iface.event_types) == {"Finished", "Jammed"}
        assert iface.event_types["Finished"].params == ("jobno",)
        assert iface.event_types["Jammed"].params == ()

    def test_parse_idl_rejects_garbage(self):
        with pytest.raises(EventError):
            parse_idl("interface X {\n  blah blah\n}")

    def test_parse_idl_requires_interface(self):
        with pytest.raises(EventError):
            parse_idl("operation F()")
