"""Tests for the event broker (sections 6.2.2 and 6.8.1)."""

import pytest

from repro.errors import RegistrationError
from repro.events.broker import EventBroker
from repro.events.horizon import HorizonTracker
from repro.events.model import WILDCARD, Event, Var, template
from repro.runtime.clock import ManualClock, SimClock
from repro.runtime.simulator import Simulator


def make_broker(**kwargs):
    clock = ManualClock(1.0)
    return clock, EventBroker("P", clock=clock, **kwargs)


class Collector:
    def __init__(self):
        self.events = []
        self.horizons = []

    def __call__(self, event, horizon):
        if event is not None:
            self.events.append(event)
        self.horizons.append(horizon)


class TestRegistration:
    def test_matching_event_notified(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        broker.register(session, template("Finished", 27))
        broker.signal(Event("Finished", (27,)))
        broker.signal(Event("Finished", (28,)))
        assert [e.args for e in got.events] == [(27,)]

    def test_wildcard_registration(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        broker.register(session, template("Finished", WILDCARD))
        broker.signal(Event("Finished", (1,)))
        broker.signal(Event("Finished", (2,)))
        assert len(got.events) == 2

    def test_deregister_stops_notifications(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        registration = broker.register(session, template("Finished", WILDCARD))
        broker.deregister(registration)
        broker.signal(Event("Finished", (1,)))
        assert got.events == []

    def test_closed_session_rejected(self):
        clock, broker = make_broker()
        session = broker.establish_session(Collector())
        broker.close_session(session)
        with pytest.raises(RegistrationError):
            broker.register(session, template("Finished", WILDCARD))

    def test_events_stamped_with_source_clock(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        broker.register(session, template("E"))
        clock.advance(4.0)
        broker.signal(Event("E", ()))
        assert got.events[0].timestamp == 5.0
        assert got.events[0].source == "P"

    def test_admission_control_hook(self):
        def admission(info):
            if info.get("user") != "dm":
                raise PermissionError("no")

        clock, broker = make_broker(admission=admission)
        broker.establish_session(Collector(), info={"user": "dm"})
        with pytest.raises(PermissionError):
            broker.establish_session(Collector(), info={"user": "eve"})

    def test_notification_filter(self):
        clock, broker = make_broker(
            notification_filter=lambda session, event: event.args[0] != "secret"
        )
        got = Collector()
        session = broker.establish_session(got)
        broker.register(session, template("E", WILDCARD))
        broker.signal(Event("E", ("public",)))
        broker.signal(Event("E", ("secret",)))
        assert [e.args for e in got.events] == [("public",)]
        assert broker.stats.suppressed_by_filter == 1


class TestPreRegistration:
    def test_preregistration_buffers_without_notifying(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        broker.preregister(session, template("Seen", WILDCARD))
        broker.signal(Event("Seen", ("b1",)))
        assert got.events == []
        assert broker.buffered() == 1

    def test_retrospective_registration_replays(self):
        """The section 6.8.1 race: events between lookup and registration
        must not be lost."""
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", Var("b")))
        clock.advance(1.0)            # t=2
        broker.signal(Event("Seen", ("b1",)))
        clock.advance(1.0)            # t=3
        broker.signal(Event("Seen", ("b2",)))
        replay = broker.retro_register(pre, since=2.0)
        assert [e.args for e in replay] == [("b1",), ("b2",)]
        assert [e.args for e in got.events] == [("b1",), ("b2",)]
        # now live: future events notified directly
        broker.signal(Event("Seen", ("b3",)))
        assert got.events[-1].args == ("b3",)

    def test_retrospective_respects_since(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", WILDCARD))
        broker.signal(Event("Seen", ("old",)))
        clock.advance(5.0)
        broker.signal(Event("Seen", ("new",)))
        replay = broker.retro_register(pre, since=3.0)
        assert [e.args for e in replay] == [("new",)]

    def test_narrowing(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        pre = broker.preregister(session, template("Seen", WILDCARD, WILDCARD))
        broker.narrow(pre, template("Seen", "b1", WILDCARD))
        broker.signal(Event("Seen", ("b1", "T14")))
        broker.signal(Event("Seen", ("b2", "T15")))
        replay = broker.retro_register(pre, since=0.0)
        assert [e.args for e in replay] == [("b1", "T14")]

    def test_retention_bound(self):
        """A service only buffers for a bounded period (section 6.8.1)."""
        clock, broker = make_broker(retention=10.0)
        session = broker.establish_session(Collector())
        pre = broker.preregister(session, template("E", WILDCARD))
        broker.signal(Event("E", (1,)))
        clock.advance(20.0)
        broker.signal(Event("E", (2,)))
        replay = broker.retro_register(pre, since=0.0)
        assert [e.args for e in replay] == [(2,)]


class TestHeartbeatsAndHorizon:
    def test_heartbeat_carries_horizon(self):
        clock, broker = make_broker()
        got = Collector()
        broker.establish_session(got)
        clock.advance(4.0)
        broker.heartbeat()
        # the horizon is a *strict* lower bound, just below clock.now
        assert got.horizons == [pytest.approx(5.0)]
        assert got.horizons[0] < 5.0

    def test_notifications_carry_horizon(self):
        clock, broker = make_broker()
        got = Collector()
        session = broker.establish_session(got)
        broker.register(session, template("E"))
        broker.signal(Event("E", ()))
        assert got.horizons == [pytest.approx(1.0)]
        assert got.horizons[0] < 1.0

    def test_simulated_delivery_delay(self):
        sim = Simulator()
        broker = EventBroker("P", clock=SimClock(sim), simulator=sim)
        got = Collector()
        session = broker.establish_session(got, delay=0.5)
        broker.register(session, template("E"))
        sim.schedule(1.0, lambda: broker.signal(Event("E", ())))
        sim.run()
        assert got.events[0].timestamp == 1.0   # stamped at source
        assert sim.now == 1.5                    # delivered after delay


class TestHorizonTracker:
    def test_global_is_minimum(self):
        tracker = HorizonTracker()
        tracker.update("a", 5.0)
        tracker.update("b", 3.0)
        assert tracker.global_horizon() == 3.0

    def test_expected_source_pins_horizon(self):
        tracker = HorizonTracker()
        tracker.update("a", 5.0)
        tracker.expect_source("b")
        assert tracker.global_horizon() == float("-inf")

    def test_advance_callbacks(self):
        tracker = HorizonTracker()
        advances = []
        tracker.on_advance(advances.append)
        tracker.update("a", 1.0)
        tracker.update("a", 2.0)
        tracker.update("a", 1.5)   # regression ignored
        assert advances == [1.0, 2.0]

    def test_forget_source_unpins(self):
        tracker = HorizonTracker()
        tracker.update("a", 5.0)
        tracker.expect_source("b")
        tracker.forget_source("b")
        assert tracker.global_horizon() == 5.0

    def test_empty_tracker(self):
        assert HorizonTracker().global_horizon() == float("-inf")
