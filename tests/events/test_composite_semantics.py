"""Tests for the denotational semantics Φ (section 6.5), including the
paper's worked examples."""

import pytest

from repro.events.composite.parser import parse_expression
from repro.events.composite.semantics import evaluate
from repro.events.model import Event


def trace(*items):
    """items: (name, args, timestamp)"""
    return [Event(name, tuple(args), timestamp=t) for name, args, t in items]


def times(occurrences):
    return sorted(t for t, _ in occurrences)


def envs(occurrences):
    return sorted(tuple(sorted(dict(e).items())) for _, e in occurrences)


class TestBaseCases:
    def test_template_first_match_only(self):
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0))
        occ = evaluate(parse_expression("A(x)"), tr, start=0.0)
        assert occ == {(1.0, frozenset({("x", 1)}))}

    def test_template_respects_start(self):
        tr = trace(("A", (), 1.0), ("A", (), 5.0))
        occ = evaluate(parse_expression("A"), tr, start=1.0)
        assert times(occ) == [5.0]   # strictly after start

    def test_template_literal_filter(self):
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0))
        occ = evaluate(parse_expression("A(2)"), tr, start=0.0)
        assert times(occ) == [2.0]

    def test_bound_variable_constrains(self):
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0))
        occ = evaluate(parse_expression("A(x)"), tr, start=0.0, env={"x": 2})
        assert times(occ) == [2.0]

    def test_side_expression_filters(self):
        tr = trace(("W", (100,), 1.0), ("W", (600,), 2.0))
        occ = evaluate(parse_expression("W(z) {z > 500}"), tr, start=0.0)
        assert times(occ) == [2.0]

    def test_side_assignment_binds(self):
        tr = trace(("Alarm", (), 10.0),)
        occ = evaluate(parse_expression("Alarm() {t = @ + 60}"), tr, start=0.0)
        [(t, env)] = occ
        assert dict(env)["t"] == 70.0

    def test_null(self):
        occ = evaluate(parse_expression("null"), [], start=5.0)
        assert times(occ) == [5.0]

    def test_abstime(self):
        occ = evaluate(parse_expression("AbsTime(t)"), [], start=0.0, env={"t": 9.0})
        assert times(occ) == [9.0]

    def test_abstime_in_past_fires_at_start(self):
        occ = evaluate(parse_expression("AbsTime(t)"), [], start=10.0, env={"t": 3.0})
        assert times(occ) == [10.0]


class TestOperators:
    def test_sequence(self):
        tr = trace(("A", (), 1.0), ("B", (), 2.0))
        occ = evaluate(parse_expression("A; B"), tr, start=0.0)
        assert times(occ) == [2.0]

    def test_sequence_not_immediate(self):
        """';' does not mean *immediately* following (section 6.5)."""
        tr = trace(("A", (), 1.0), ("X", (), 1.5), ("B", (), 2.0))
        occ = evaluate(parse_expression("A; B"), tr, start=0.0)
        assert times(occ) == [2.0]

    def test_sequence_shares_bindings(self):
        tr = trace(("A", (7,), 1.0), ("B", (7,), 2.0), ("B", (8,), 3.0))
        occ = evaluate(parse_expression("A(x); B(x)"), tr, start=0.0)
        assert occ == {(2.0, frozenset({("x", 7)}))}

    def test_or_union(self):
        tr = trace(("A", (), 1.0), ("B", (), 2.0))
        occ = evaluate(parse_expression("A | B"), tr, start=0.0)
        assert times(occ) == [1.0, 2.0]

    def test_without_passes_when_no_blocker(self):
        tr = trace(("A", (), 2.0),)
        occ = evaluate(parse_expression("A - B"), tr, start=0.0)
        assert times(occ) == [2.0]

    def test_without_blocked(self):
        tr = trace(("B", (), 1.0), ("A", (), 2.0))
        occ = evaluate(parse_expression("A - B"), tr, start=0.0)
        assert occ == set()

    def test_without_blocker_after_is_fine(self):
        tr = trace(("A", (), 1.0), ("B", (), 2.0))
        occ = evaluate(parse_expression("A - B"), tr, start=0.0)
        assert times(occ) == [1.0]

    def test_without_simultaneous_blocks(self):
        """Φ: t1 <= t — an equal-stamp C2 kills C1."""
        tr = trace(("B", (), 2.0), ("A", (), 2.0))
        occ = evaluate(parse_expression("A - B"), tr, start=0.0)
        assert occ == set()

    def test_whenever_repeats_with_fresh_bindings(self):
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0), ("A", (3,), 3.0))
        occ = evaluate(parse_expression("$A(x)"), tr, start=0.0)
        assert times(occ) == [1.0, 2.0, 3.0]
        assert envs(occ) == [(("x", 1),), (("x", 2),), (("x", 3),)]

    def test_plain_template_vs_whenever(self):
        """Without $, a sequence of A's with different parameters only
        matches once — the section 6.4.2 motivation for 'whenever'."""
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0))
        assert len(evaluate(parse_expression("A(x)"), tr, start=0.0)) == 1
        assert len(evaluate(parse_expression("$A(x)"), tr, start=0.0)) == 2

    def test_whenever_null_is_least_solution(self):
        occ = evaluate(parse_expression("$null"), [], start=4.0)
        assert occ == {(4.0, frozenset())}

    def test_whenever_for_each_semantics(self):
        """$A(x); B(x): one evaluation of B per distinct A occurrence."""
        tr = trace(
            ("A", (1,), 1.0), ("A", (2,), 2.0),
            ("B", (2,), 3.0), ("B", (1,), 4.0),
        )
        occ = evaluate(parse_expression("$A(x); B(x)"), tr, start=0.0)
        assert times(occ) == [3.0, 4.0]


class TestPaperExamples:
    def test_enters(self):
        """Enters(B, R) = $Seen(B, R1); Seen(B, R) - Seen(B, R1):
        a badge enters a room when seen there after being seen elsewhere."""
        expr = parse_expression("$Seen(B, R1); Seen(B, R) - Seen(B, R1)")
        tr = trace(
            ("Seen", ("b", "T14"), 1.0),
            ("Seen", ("b", "T15"), 2.0),   # enters T15
            ("Seen", ("b", "T15"), 3.0),   # still in T15 (repeat sighting)
            ("Seen", ("b", "T16"), 4.0),   # enters T16
        )
        occ = evaluate(expr, tr, start=0.0)
        entries = {(t, dict(e)["R"]) for t, e in occ if dict(e).get("R") != dict(e).get("R1")}
        assert (2.0, "T15") in entries
        assert (4.0, "T16") in entries

    def test_together(self):
        """Two people in the same room (the fig 6.4 scenario)."""
        expr = parse_expression(
            "($Seen(A, R); $Seen(B, R) - Seen(A, R1) {R1 != R})"
        )
        tr = trace(
            ("Seen", ("roger", "T14"), 1.0),
            ("Seen", ("giles", "T14"), 2.0),    # together in T14
            ("Seen", ("roger", "T15"), 3.0),
            ("Seen", ("giles", "T15"), 4.0),    # together in T15
        )
        occ = evaluate(expr, tr, start=0.0, env={"A": "roger", "B": "giles"})
        assert 2.0 in times(occ)
        assert 4.0 in times(occ)

    def test_trapped_fire_alarm(self):
        """Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)."""
        expr = parse_expression("Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)")
        tr = trace(
            ("Seen", ("b9",), 0.5),             # before the alarm: ignored
            ("Alarm", (), 1.0),
            ("Seen", ("b1",), 2.0),
            ("OwnsBadge", ("b1", "fred"), 2.5),  # the active-DB lookup reply
        )
        occ = evaluate(expr, tr, start=0.0)
        assert any(dict(e).get("P") == "fred" for _, e in occ)

    def test_trapped_all_clear_stops_detection(self):
        expr = parse_expression("Alarm(); (Seen(B) - AllClear())")
        tr = trace(
            ("Alarm", (), 1.0),
            ("AllClear", (), 1.5),
            ("Seen", ("b1",), 2.0),
        )
        occ = evaluate(expr, tr, start=0.0)
        assert occ == set()

    def test_squash_end_of_point_serve_fault(self):
        """After the serve, the ball fails to hit the front wall first."""
        expr = parse_expression("$serve(s); ((floor | wall | hit(i)) - front)")
        tr = trace(("serve", (1,), 1.0), ("floor", (), 2.0))
        occ = evaluate(expr, tr, start=0.0)
        assert times(occ) == [2.0]

    def test_squash_good_serve_not_flagged(self):
        expr = parse_expression("$serve(s); ((floor | wall | hit(i)) - front)")
        tr = trace(("serve", (1,), 1.0), ("front", (), 1.5), ("floor", (), 2.0))
        occ = evaluate(expr, tr, start=0.0)
        assert occ == set()

    def test_squash_double_bounce(self):
        """After the front wall, the ball bounces twice before a hit."""
        expr = parse_expression("$serve(s); ($front; (floor; floor) - hit(i))")
        tr = trace(
            ("serve", (1,), 1.0),
            ("front", (), 2.0),
            ("floor", (), 3.0),
            ("floor", (), 4.0),
        )
        occ = evaluate(expr, tr, start=0.0)
        assert 4.0 in times(occ)

    def test_squash_player_fails_to_alternate(self):
        expr = parse_expression("$serve(s); ($hit(i); hit(i) - hit(j) {j != i})")
        tr = trace(
            ("serve", (1,), 1.0),
            ("hit", (2,), 2.0),
            ("hit", (2,), 3.0),    # same player twice
        )
        occ = evaluate(expr, tr, start=0.0)
        assert 3.0 in times(occ)

    def test_squash_alternating_ok(self):
        expr = parse_expression("$serve(s); ($hit(i); hit(i) - hit(j) {j != i})")
        tr = trace(
            ("serve", (1,), 1.0),
            ("hit", (1,), 2.0),
            ("hit", (2,), 3.0),
            ("hit", (1,), 4.0),
        )
        occ = evaluate(expr, tr, start=0.0)
        assert occ == set()
