"""Tests for aggregation (sections 6.9-6.11): the two-section queue, the
toy language and the built-in aggregators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AggregationError
from repro.events.aggregation.functions import Count, First, Maximum, Once, attach
from repro.events.aggregation.language import parse_aggregation
from repro.events.aggregation.queue import TwoSectionQueue


class TestTwoSectionQueue:
    def test_items_sorted_by_timestamp(self):
        q = TwoSectionQueue()
        q.insert(3.0, "c")
        q.insert(1.0, "a")
        q.insert(2.0, "b")
        assert [i.payload for i in q.variable_items()] == ["a", "b", "c"]

    def test_fix_up_to_moves_boundary(self):
        q = TwoSectionQueue()
        q.insert(1.0, "a")
        q.insert(2.0, "b")
        q.insert(3.0, "c")
        newly = q.fix_up_to(2.0)
        assert [i.payload for i in newly] == ["a", "b"]
        assert [i.payload for i in q.fixed_items()] == ["a", "b"]
        assert [i.payload for i in q.variable_items()] == ["c"]

    def test_late_insert_into_variable_ok(self):
        """Fig 6.6: a delayed event is inserted at the appropriate point
        of the variable section."""
        q = TwoSectionQueue()
        q.insert(5.0, "late-ish")
        q.fix_up_to(2.0)
        q.insert(3.0, "delayed")  # above the boundary: fine
        assert [i.payload for i in q.variable_items()] == ["delayed", "late-ish"]

    def test_insert_below_boundary_rejected(self):
        q = TwoSectionQueue()
        q.fix_up_to(5.0)
        with pytest.raises(AggregationError):
            q.insert(4.0, "too late")
        assert q.late_rejections == 1

    def test_on_fixed_fires_in_order(self):
        seen = []
        q = TwoSectionQueue(on_fixed=lambda i: seen.append(i.payload))
        q.insert(2.0, "b")
        q.insert(1.0, "a")
        q.fix_up_to(10.0)
        assert seen == ["a", "b"]

    def test_on_boundary_meta_event(self):
        boundaries = []
        q = TwoSectionQueue(on_boundary=boundaries.append)
        q.fix_up_to(1.0)
        q.fix_up_to(3.0)
        q.fix_up_to(2.0)  # regression: ignored
        assert boundaries == [1.0, 3.0]

    def test_pop_fixed(self):
        q = TwoSectionQueue()
        q.insert(1.0, "a")
        q.fix_up_to(2.0)
        assert q.pop_fixed().payload == "a"
        with pytest.raises(AggregationError):
            q.pop_fixed()

    def test_equal_timestamps_keep_insertion_order(self):
        q = TwoSectionQueue()
        q.insert(1.0, "first")
        q.insert(1.0, "second")
        q.fix_up_to(1.0)
        assert [i.payload for i in q.fixed_items()] == ["first", "second"]

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_fixed_prefix_always_sorted_and_stable(self, stamps):
        """INVARIANT: the fixed section is totally ordered and its
        contents never change once fixed."""
        q = TwoSectionQueue()
        snapshots = []
        horizon = -1.0
        for i, stamp in enumerate(stamps):
            if stamp > horizon:
                q.insert(stamp, i)
            if i % 3 == 2:
                horizon = max(horizon, stamp - 1.0)
                q.fix_up_to(horizon)
                fixed = [x.payload for x in q.fixed_items()]
                snapshots.append(fixed)
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert later[: len(earlier)] == earlier
        times = [x.timestamp for x in q.fixed_items()]
        assert times == sorted(times)


class TestAggregationLanguage:
    def test_counting(self):
        """Section 6.11.1: count deposits between open and close."""
        agg = parse_aggregation("""
        {
            int n = 0;
            expr: Deposit(x) - Close
            event: n = n + 1;
            term: signal(n);
        }
        """)
        for i in range(4):
            agg.offer(float(i + 1), {"x": 10 * i})
        agg.advance(10.0)
        agg.terminate()
        assert agg.signals == [(4,)]

    def test_summing_with_new(self):
        agg = parse_aggregation("""
        {
            int t = 0;
            expr: Deposit(x) - Close
            event: t = t + new.x;
            term: signal(t);
        }
        """)
        agg.offer(1.0, {"x": 5})
        agg.offer(2.0, {"x": 7})
        agg.advance(10.0)
        agg.terminate()
        assert agg.signals == [(12,)]

    def test_maximum(self):
        """Section 6.11.2."""
        agg = parse_aggregation("""
        {
            int m = 0;
            expr: Withdraw(z)
            event: if (new.z > m) m = new.z;
            term: signal(m);
        }
        """)
        for t, z in [(1.0, 5), (2.0, 90), (3.0, 30)]:
            agg.offer(t, {"z": z})
        agg.advance(10.0)
        agg.terminate()
        assert agg.signals == [(90,)]

    def test_first_signals_only_when_fixed(self):
        """Section 6.11.3: 'first' needs to know nothing earlier can
        still arrive."""
        agg = parse_aggregation("""
        {
            int done = 0;
            expr: A | B
            event: if (done == 0) { done = 1; signal(new.time); }
        }
        """)
        agg.offer(5.0, {})
        assert agg.signals == []          # not fixed yet
        agg.offer(3.0, {})                # a delayed, earlier event
        agg.advance(10.0)
        assert agg.signals == [(3.0,)]    # the true first

    def test_terminate_statement_stops_processing(self):
        agg = parse_aggregation("""
        {
            int n = 0;
            expr: A
            event: n = n + 1; signal(n); terminate();
        }
        """)
        agg.offer(1.0, {})
        agg.offer(2.0, {})
        agg.advance(10.0)
        assert agg.signals == [(1,)]

    def test_var_section_sees_boundary(self):
        agg = parse_aggregation("""
        {
            float b = 0.0;
            expr: A
            var: b = boundary;
        }
        """)
        agg.offer(1.0, {})
        agg.advance(7.5)
        assert agg.vars["b"] == 7.5

    def test_events_processed_in_timestamp_order(self):
        agg = parse_aggregation("""
        {
            int last = 0;
            int ordered = 1;
            expr: A(x)
            event: if (new.x < last) ordered = 0; last = new.x;
        }
        """)
        agg.offer(2.0, {"x": 2})
        agg.offer(1.0, {"x": 1})
        agg.offer(3.0, {"x": 3})
        agg.advance(10.0)
        assert agg.vars["ordered"] == 1

    def test_expr_source_recovered(self):
        agg = parse_aggregation("{ expr: Deposit(x) - Close(y) \n term: signal(1); }")
        assert agg.expr_source == "Deposit(x) - Close(y)"

    def test_undeclared_variable_rejected(self):
        agg = parse_aggregation("{ expr: A \n event: q = 1; }")
        with pytest.raises(AggregationError):
            agg.offer(1.0, {})
            agg.advance(10.0)

    def test_on_signal_callback(self):
        got = []
        agg = parse_aggregation(
            "{ int n = 0; expr: A \n event: n = n + 1; \n term: signal(n); }",
            on_signal=lambda *a: got.append(a),
        )
        agg.offer(1.0, {})
        agg.advance(2.0)
        agg.terminate()
        assert got == [(1,)]

    def test_arithmetic(self):
        agg = parse_aggregation("""
        {
            int a = 0;
            expr: E
            event: a = (2 + 3) * 4 - 6 / 2;
        }
        """)
        agg.offer(1.0, {})
        agg.advance(2.0)
        assert agg.vars["a"] == 17


class TestBuiltins:
    def test_count(self):
        count = Count()
        for t in (1.0, 2.0, 3.0):
            count.offer(t)
        count.advance(10.0)
        count.terminate()
        assert count.signals == [(3,)]

    def test_count_running(self):
        count = Count(running=True)
        count.offer(1.0)
        count.offer(2.0)
        count.advance(10.0)
        assert count.signals == [(1,), (2,)]

    def test_maximum(self):
        maximum = Maximum("z")
        for t, z in [(1.0, 10), (2.0, 99), (3.0, 50)]:
            maximum.offer(t, {"z": z})
        maximum.advance(10.0)
        maximum.terminate()
        assert maximum.signals == [(99,)]

    def test_first_with_delayed_earlier_event(self):
        first = First()
        first.offer(5.0, {"who": "late"})
        first.advance(2.0)       # boundary below 5.0: not yet decidable
        assert first.signals == []
        first.offer(3.0, {"who": "early"})
        first.advance(10.0)
        assert first.signals[0][0] == 3.0
        assert first.signals[0][1] == {"who": "early"}

    def test_once_collapses_bursts(self):
        """The squash end-of-point: several conditions fire together but
        only one point ends."""
        once = Once(window=5.0)
        once.offer(10.0, {})
        once.offer(10.1, {})
        once.offer(10.2, {})
        once.offer(20.0, {})
        once.advance(30.0)
        assert [s[0] for s in once.signals] == [10.0, 20.0]

    def test_attach_to_detector_watch(self):
        from repro.events.composite.detector import CompositeEventDetector
        from repro.events.model import Event

        detector = CompositeEventDetector()
        watch = detector.watch("$Deposit(x)")
        count = attach(Count(running=True), watch, tracker=detector.horizons)
        detector.post(Event("Deposit", (5,), timestamp=1.0))
        detector.post(Event("Deposit", (6,), timestamp=2.0))
        detector.update_horizon("bank", 10.0)
        assert count.signals == [(1,), (2,)]
