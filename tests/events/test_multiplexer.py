"""Tests for event multiplexing/forwarding (sections 6.2.3, 4.10)."""

import pytest

from repro.events.broker import EventBroker
from repro.events.model import Event, Var, WILDCARD, template
from repro.events.multiplexer import EventMultiplexer
from repro.runtime.clock import ManualClock


def make_world():
    clock = ManualClock(1.0)
    up_a = EventBroker("site-a", clock=clock)
    up_b = EventBroker("site-b", clock=clock)
    mux = EventMultiplexer("mux", clock=clock)
    mux.connect_upstream(up_a)
    mux.connect_upstream(up_b)
    return clock, up_a, up_b, mux


def collector():
    events, horizons = [], []

    def notify(event, horizon):
        horizons.append(horizon)
        if event is not None:
            events.append(event)

    return events, horizons, notify


def test_events_from_all_upstreams_forwarded():
    clock, up_a, up_b, mux = make_world()
    events, horizons, notify = collector()
    session = mux.broker.establish_session(notify)
    mux.broker.register(session, template("Seen", WILDCARD, WILDCARD))
    up_a.signal(Event("Seen", ("b1", "s1")))
    up_b.signal(Event("Seen", ("b2", "s2")))
    assert [e.args[0] for e in events] == ["b1", "b2"]
    assert mux.forwarded == 2


def test_original_stamps_and_sources_preserved():
    clock, up_a, up_b, mux = make_world()
    events, horizons, notify = collector()
    session = mux.broker.establish_session(notify)
    mux.broker.register(session, template("Seen", WILDCARD, WILDCARD))
    clock.advance(4.0)
    up_a.signal(Event("Seen", ("b1", "s1")))
    assert events[0].timestamp == 5.0
    assert events[0].source == "site-a"      # not rewritten to 'mux'


def test_downstream_filtering_still_works():
    clock, up_a, up_b, mux = make_world()
    events, horizons, notify = collector()
    session = mux.broker.establish_session(notify)
    mux.broker.register(session, template("Seen", "b1", WILDCARD))
    up_a.signal(Event("Seen", ("b1", "s1")))
    up_a.signal(Event("Seen", ("b2", "s1")))
    assert len(events) == 1


def test_indirect_horizon_is_minimum_upstream():
    """Section 4.10: guarantees about indirect events are only as strong
    as the slowest upstream's promise."""
    clock, up_a, up_b, mux = make_world()
    assert mux.indirect_horizon() == float("-inf")   # nothing promised yet
    clock.advance(9.0)                                # now 10.0
    up_a.heartbeat()
    assert mux.indirect_horizon() == float("-inf")   # site-b still silent
    up_b.heartbeat()
    assert mux.indirect_horizon() == pytest.approx(10.0)
    clock.advance(5.0)
    up_a.heartbeat()                                  # a alone advances
    assert mux.indirect_horizon() == pytest.approx(10.0)  # still bound by b


def test_downstream_notifications_carry_indirect_horizon():
    clock, up_a, up_b, mux = make_world()
    events, horizons, notify = collector()
    session = mux.broker.establish_session(notify)
    mux.broker.register(session, template("E"))
    clock.advance(9.0)
    up_a.heartbeat()
    up_b.heartbeat()
    up_a.signal(Event("E", ()))
    # the event's notification carries the *indirect* horizon (~10),
    # not the local clock
    assert horizons[-1] == pytest.approx(10.0)


def test_upstream_heartbeats_forwarded():
    clock, up_a, up_b, mux = make_world()
    events, horizons, notify = collector()
    mux.broker.establish_session(notify)
    up_a.heartbeat()
    assert len(horizons) == 1   # the guarantee propagated downstream


def test_transform_can_rename_and_drop():
    """A value-adding forwarder: anonymise sightings, drop the rest."""
    clock = ManualClock(1.0)
    upstream = EventBroker("raw", clock=clock)

    def anonymise(event):
        if event.name != "Seen":
            return None
        return Event("Presence", (event.args[1],), event.timestamp, event.source)

    mux = EventMultiplexer("anon", clock=clock, transform=anonymise)
    mux.connect_upstream(upstream)
    events, horizons, notify = collector()
    session = mux.broker.establish_session(notify)
    mux.broker.register(session, template("Presence", WILDCARD))
    upstream.signal(Event("Seen", ("badge-rjh", "s1")))
    upstream.signal(Event("Gossip", ("secret",)))
    assert [e.name for e in events] == ["Presence"]
    assert events[0].args == ("s1",)
    assert mux.dropped_by_transform == 1


def test_composite_detection_over_multiplexed_feed():
    """A detector on the mux behaves as if connected to both sites."""
    from repro.events.composite.detector import CompositeEventDetector

    clock, up_a, up_b, mux = make_world()
    detector = CompositeEventDetector(clock=clock)
    detector.connect(mux.broker)
    watch = detector.watch('Seen("b1", s); Seen("b2", s)')
    clock.advance(1.0)
    up_a.signal(Event("Seen", ("b1", "room")))
    clock.advance(1.0)
    up_b.signal(Event("Seen", ("b2", "room")))
    assert len(watch.occurrences) == 1
