"""Tests for the probabilistic-ordering extension (section 6.8.4).

With drifting clocks, two stamps close together cannot be ordered
reliably.  ``A - B {prob = p}`` translates the requested minimum
ordering confidence into a timestamp margin ("these specifications may
be translated into modifications in the acceptable time stamps ... no
additional run time overhead").
"""

import pytest

from repro.events.composite.machine import Machine
from repro.events.composite.parser import parse_expression
from repro.events.model import Event


def run(source, events, skew):
    signals = []
    machine = Machine(
        parse_expression(source), lambda t, e: signals.append(t),
        start=0.0, clock_skew=skew,
    )
    for event in events:
        machine.post(event)
    machine.advance_horizon(float("inf"))
    return signals


B_SLIGHTLY_AFTER = [Event("A", (), timestamp=10.0), Event("B", (), timestamp=10.3)]
B_SLIGHTLY_BEFORE = [Event("B", (), timestamp=9.7), Event("A", (), timestamp=10.0)]
B_CLEARLY_BEFORE = [Event("B", (), timestamp=5.0), Event("A", (), timestamp=10.0)]


def test_default_uses_raw_timestamp_order():
    """No annotation: 'time stamp order will always give the most
    probable order'."""
    assert run("A - B", B_SLIGHTLY_AFTER, skew=1.0) == [10.0]
    assert run("A - B", B_SLIGHTLY_BEFORE, skew=1.0) == []


def test_high_confidence_suppresses_ambiguous_order():
    """'Signal if A almost certainly occurred before B': with skew 1.0
    and B stamped only 0.3 later, the order is uncertain — no signal."""
    assert run("A - B {prob = 0.95}", B_SLIGHTLY_AFTER, skew=1.0) == []


def test_high_confidence_passes_clear_order():
    events = [Event("A", (), timestamp=10.0), Event("B", (), timestamp=15.0)]
    assert run("A - B {prob = 0.95}", events, skew=1.0) == [10.0]


def test_low_confidence_signals_despite_earlier_stamp():
    """'Signal if A might possibly have occurred before B': B's stamp is
    only 0.3 earlier, which drift could explain — A passes."""
    assert run("A - B {prob = 0.05}", B_SLIGHTLY_BEFORE, skew=1.0) == [10.0]


def test_low_confidence_still_blocked_by_clear_blocker():
    assert run("A - B {prob = 0.05}", B_CLEARLY_BEFORE, skew=1.0) == []


def test_neutral_probability_equals_raw_order():
    """p = 0.5 is exactly raw stamp comparison."""
    for trace in (B_SLIGHTLY_AFTER, B_SLIGHTLY_BEFORE, B_CLEARLY_BEFORE):
        assert run("A - B {prob = 0.5}", trace, skew=1.0) == run("A - B", trace, skew=1.0)


def test_zero_skew_ignores_probability():
    """Perfectly synchronised clocks: the annotation costs nothing."""
    assert run("A - B {prob = 0.95}", B_SLIGHTLY_AFTER, skew=0.0) == [10.0]


def test_margin_from_drifting_clock_model():
    """The margin can be derived from the DriftingClock model of
    section 6.8.4 via max_clock_skew."""
    from repro.runtime.clock import DriftingClock, max_clock_skew
    from repro.runtime.simulator import Simulator

    sim = Simulator()
    clocks = [DriftingClock(sim, drift=+0.001), DriftingClock(sim, drift=-0.001)]
    skew = max_clock_skew(clocks, horizon=1000.0)
    assert skew == pytest.approx(2.0)
    # events stamped 1s apart by these clocks cannot be ordered with
    # high confidence over a 1000s run
    assert run("A - B {prob = 0.95}", B_SLIGHTLY_AFTER, skew=skew) == []
