"""Further property-based tests for the composite event subsystem.

* the parser round-trips through the AST's string rendering;
* the GLOBAL-VIEW detector matches Φ under *any* arrival permutation
  (it buffers and releases in timestamp order — so misordered delivery
  must not change the outcome);
* machine history pruning never affects results once frames are settled.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events.composite.detector import CompositeEventDetector
from repro.events.composite.parser import parse_expression
from repro.events.composite.semantics import evaluate
from repro.events.model import Event
from repro.runtime.clock import ManualClock

_EVENT_NAMES = ["A", "B", "C"]


@st.composite
def _expressions(draw, depth=0):
    if depth >= 3:
        choices = ["template", "null"]
    else:
        choices = ["template", "template", "null", "seq", "or", "without", "whenever"]
    kind = draw(st.sampled_from(choices))
    if kind == "template":
        name = draw(st.sampled_from(_EVENT_NAMES))
        param = draw(st.one_of(
            st.sampled_from(["x", "y"]),
            st.integers(min_value=1, max_value=3),
        ))
        return f"{name}({param})"
    if kind == "null":
        return "null"
    if kind == "seq":
        return f"({draw(_expressions(depth + 1))}; {draw(_expressions(depth + 1))})"
    if kind == "or":
        return f"({draw(_expressions(depth + 1))} | {draw(_expressions(depth + 1))})"
    if kind == "without":
        return f"({draw(_expressions(depth + 1))} - {draw(_expressions(depth + 1))})"
    return f"$({draw(_expressions(depth + 1))})"


@st.composite
def _traces_with_permutation(draw):
    n = draw(st.integers(min_value=0, max_value=7))
    events = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
        name = draw(st.sampled_from(_EVENT_NAMES))
        arg = draw(st.integers(min_value=1, max_value=3))
        events.append(Event(name, (arg,), timestamp=round(t, 3)))
    permutation = draw(st.permutations(range(n)))
    return events, list(permutation)


@given(_expressions())
@settings(max_examples=200, deadline=None)
def test_parser_roundtrip_through_str(source):
    """PROPERTY: parse(str(parse(s))) == parse(s)."""
    node = parse_expression(source)
    again = parse_expression(str(node))
    assert again == node


@given(_expressions(), _traces_with_permutation())
@settings(max_examples=150, deadline=None)
def test_global_view_detector_is_order_insensitive(source, trace_perm):
    """PROPERTY: the global-view detector signals exactly Φ regardless of
    the order in which events arrive across sources."""
    events, permutation = trace_perm
    expected = evaluate(parse_expression(source), events, start=0.0)

    clock = ManualClock(0.0)
    detector = CompositeEventDetector(clock=clock, mode="global-view")
    signals = set()
    detector.watch(source, callback=lambda t, e: signals.add((t, frozenset(e.items()))))
    # deliver in the permuted order; the horizon only advances to the
    # minimum stamp not yet delivered (as real per-source horizons would)
    delivered = set()
    for index in permutation:
        detector.post(events[index])
        delivered.add(index)
        undelivered = [e.timestamp for i, e in enumerate(events) if i not in delivered]
        horizon = min(undelivered) - 1e-9 if undelivered else float("inf")
        detector.update_horizon("src", horizon)
    detector.update_horizon("src", float("inf"))
    assert signals == expected


@given(_expressions(), _traces_with_permutation())
@settings(max_examples=100, deadline=None)
def test_history_pruning_after_settlement_is_safe(source, trace_perm):
    """PROPERTY: pruning the machine's replay history below the horizon
    after everything settled never changes or destroys past signals."""
    from repro.events.composite.machine import Machine

    events, _ = trace_perm
    signals = set()
    machine = Machine(parse_expression(source),
                      lambda t, e: signals.add((t, frozenset(e.items()))),
                      start=0.0)
    for event in events:
        machine.post(event)
        machine.advance_horizon(event.timestamp)
        machine.prune_history(machine.horizon - 10.0)
    machine.advance_horizon(float("inf"))
    snapshot = set(signals)
    machine.prune_history(float("inf"))
    assert signals == snapshot
    expected = evaluate(parse_expression(source), events, start=0.0)
    assert signals == expected
