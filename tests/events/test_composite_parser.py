"""Tests for the composite event expression parser."""

import pytest

from repro.errors import CompositeSyntaxError
from repro.events.composite.ast import (
    CAbsTime,
    CNull,
    COr,
    CSeq,
    CTemplate,
    CWhenever,
    CWithout,
)
from repro.events.composite.parser import parse_expression
from repro.events.model import Var, WILDCARD


def test_template_with_variables_and_literals():
    node = parse_expression('Seen(b, "T14", 3, *)')
    assert isinstance(node, CTemplate)
    assert node.template.name == "Seen"
    assert node.template.params == (Var("b"), "T14", 3, WILDCARD)


def test_sequence_is_loosest():
    node = parse_expression("A; B | C")
    assert isinstance(node, CSeq)
    assert isinstance(node.right, COr)


def test_without_binds_tighter_than_or():
    node = parse_expression("A | B - C")
    assert isinstance(node, COr)
    assert isinstance(node.right, CWithout)


def test_whenever_binds_tightest():
    node = parse_expression("$A - B")
    assert isinstance(node, CWithout)
    assert isinstance(node.left, CWhenever)


def test_parentheses():
    node = parse_expression("(A; B) - C")
    assert isinstance(node, CWithout)
    assert isinstance(node.left, CSeq)


def test_null():
    assert isinstance(parse_expression("null"), CNull)


def test_abstime():
    node = parse_expression("AbsTime(t)")
    assert isinstance(node, CAbsTime)
    assert node.expr == ("var", "t")


def test_side_expression_comparison():
    node = parse_expression('Seen(x, y) {x != "rjh21"}')
    assert isinstance(node, CTemplate)
    clause = node.sides[0]
    assert (clause.var, clause.op) == ("x", "!=")
    assert clause.expr == ("lit", "rjh21")


def test_side_expression_assignment_with_now():
    node = parse_expression("Alarm() {t = @ + 60}")
    clause = node.sides[0]
    assert clause.op == "="
    assert clause.expr == ("+", ("now",), ("lit", 60))


def test_multiple_side_clauses():
    node = parse_expression("Withdraw(z, a) {z > 500, a != 0}")
    assert len(node.sides) == 2


def test_delay_annotation_on_without():
    node = parse_expression("A - B {delay = 2.5}")
    assert isinstance(node, CWithout)
    assert node.delay == 2.5


def test_probability_annotation():
    node = parse_expression("A - B {prob = 0.9}")
    assert node.probability == 0.9


def test_side_clause_on_right_operand_of_without():
    node = parse_expression("hit(s) - hit(i) {i != s}")
    assert isinstance(node, CWithout)
    assert node.delay is None
    assert isinstance(node.right, CTemplate)
    assert node.right.sides[0].op == "!="


def test_paper_example_enters():
    """$Seen(B, R1); Seen(B, R) - Seen(B, R1) — the Enters event."""
    node = parse_expression("$Seen(B, R1); Seen(B, R) - Seen(B, R1)")
    assert isinstance(node, CSeq)
    assert isinstance(node.left, CWhenever)
    assert isinstance(node.right, CWithout)


def test_paper_example_squash():
    source = """
        $serve(s); (((floor | wall | hit(i)) - front)
        | ($front; ((floor; floor) | front) - hit(i))
        | ($hit(i); (floor | hit(j)) - front)
        | (hit(s) - hit(i) {i != s})
        | ($hit(i); hit(i) - hit(j) {j != i}))
    """.strip().replace("\n", " ")
    node = parse_expression(source)
    assert isinstance(node, CSeq)


def test_empty_parens_event():
    node = parse_expression("Alarm()")
    assert node.template.params == ()


def test_unbalanced_parens_rejected():
    with pytest.raises(CompositeSyntaxError):
        parse_expression("(A; B")


def test_trailing_garbage_rejected():
    with pytest.raises(CompositeSyntaxError):
        parse_expression("A B")


def test_bad_side_clause_rejected():
    with pytest.raises(CompositeSyntaxError):
        parse_expression("A {5 = x}")


def test_mixing_delay_and_side_clauses_rejected():
    with pytest.raises(CompositeSyntaxError):
        parse_expression("A - B {delay = 1, x != 2}")


def test_sides_only_on_templates():
    with pytest.raises(CompositeSyntaxError):
        parse_expression("A - (B; C) {x != 2}")
