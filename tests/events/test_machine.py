"""Tests for the push-down bead machine (section 6.7).

The key property: fed events in timestamp order (with the horizon trailing
behind), the machine signals exactly the occurrence set of the
denotational semantics Φ.  A hypothesis test generates random expressions
and traces and checks the equivalence.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events.composite.machine import Machine
from repro.events.composite.parser import parse_expression
from repro.events.composite.semantics import evaluate
from repro.events.model import Event


def run_machine(source, events, env=None, final_horizon=None):
    """Feed events (in list order), advancing the horizon after each, then
    push the horizon past everything.  Returns the signal set."""
    signals = set()
    machine = Machine(
        parse_expression(source),
        lambda t, e: signals.add((t, frozenset(e.items()))),
        start=0.0,
        env=env,
    )
    for event in events:
        machine.post(event)
        machine.advance_horizon(event.timestamp)
    machine.advance_horizon(
        final_horizon if final_horizon is not None else float("inf")
    )
    return signals, machine


def trace(*items):
    return [Event(name, tuple(args), timestamp=t) for name, args, t in items]


def oracle(source, events, env=None):
    return evaluate(parse_expression(source), events, start=0.0, env=env)


class TestBasics:
    def test_template_signal(self):
        tr = trace(("A", (5,), 1.0))
        signals, _ = run_machine("A(x)", tr)
        assert signals == {(1.0, frozenset({("x", 5)}))}

    def test_template_only_first(self):
        tr = trace(("A", (1,), 1.0), ("A", (2,), 2.0))
        signals, _ = run_machine("A(x)", tr)
        assert len(signals) == 1

    def test_sequence(self):
        tr = trace(("A", (), 1.0), ("B", (), 2.0))
        signals, _ = run_machine("A; B", tr)
        assert {t for t, _ in signals} == {2.0}

    def test_or_both_sides(self):
        tr = trace(("A", (), 1.0), ("B", (), 2.0))
        signals, _ = run_machine("A | B", tr)
        assert {t for t, _ in signals} == {1.0, 2.0}

    def test_whenever(self):
        tr = trace(*[("A", (i,), float(i)) for i in range(1, 4)])
        signals, _ = run_machine("$A(x)", tr)
        assert {t for t, _ in signals} == {1.0, 2.0, 3.0}

    def test_without_passes(self):
        tr = trace(("A", (), 1.0))
        signals, _ = run_machine("A - B", tr)
        assert {t for t, _ in signals} == {1.0}

    def test_without_blocked(self):
        tr = trace(("B", (), 1.0), ("A", (), 2.0))
        signals, _ = run_machine("A - B", tr)
        assert signals == set()

    def test_without_waits_for_horizon(self):
        """The completion is held until the horizon rules out an earlier-
        stamped blocker (section 6.8.2)."""
        signals = set()
        machine = Machine(
            parse_expression("A - B"),
            lambda t, e: signals.add(t),
            start=0.0,
        )
        machine.post(Event("A", (), timestamp=5.0))
        assert signals == set()           # held: B@<=5 might still arrive
        machine.advance_horizon(4.0)
        assert signals == set()
        machine.advance_horizon(5.0)
        assert signals == {5.0}

    def test_without_late_blocker_suppresses(self):
        """A delayed B with an earlier stamp must still suppress A."""
        signals = set()
        machine = Machine(
            parse_expression("A - B"), lambda t, e: signals.add(t), start=0.0
        )
        machine.post(Event("A", (), timestamp=5.0))
        machine.post(Event("B", (), timestamp=3.0))   # arrives late
        machine.advance_horizon(10.0)
        assert signals == set()

    def test_without_delay_budget_trades_correctness(self):
        """Section 6.8.3: with {delay = d} the machine assumes ¬B after d
        seconds of local time even without horizon progress."""
        signals = set()
        machine = Machine(
            parse_expression("A - B {delay = 2.0}"),
            lambda t, e: signals.add(t),
            start=0.0,
        )
        machine.advance_time(10.0)
        machine.post(Event("A", (), timestamp=10.0))
        assert signals == set()
        machine.advance_time(11.0)
        assert signals == set()
        machine.advance_time(12.0)
        assert signals == {10.0}

    def test_abstime_fires_on_clock(self):
        signals = set()
        machine = Machine(
            parse_expression("Alarm() {t = @ + 60}; AbsTime(t)"),
            lambda t, e: signals.add(t),
            start=0.0,
        )
        machine.post(Event("Alarm", (), timestamp=10.0))
        machine.advance_time(50.0)
        assert signals == set()
        machine.advance_time(70.0)
        assert signals == {70.0}

    def test_null_completes_immediately(self):
        signals = set()
        Machine(parse_expression("null"), lambda t, e: signals.add(t), start=3.0)
        assert signals == {3.0}


class TestRegistrationMinimisation:
    def test_only_interesting_templates_registered(self):
        """Section 6.7: 'Only events that are truly of interest are ever
        registered' — B's template is merged with the environment bound
        by A before registration."""
        machine = Machine(parse_expression("A(x); B(x)"), lambda t, e: None, start=0.0)
        [waiting] = machine.waiting_templates()
        assert waiting.name == "A"
        machine.post(Event("A", (7,), timestamp=1.0))
        [waiting] = machine.waiting_templates()
        assert waiting.name == "B"
        assert waiting.params == (7,)

    def test_without_cleanup_deregisters_sibling(self):
        """The walkthrough's bead deletion: once A-B decides, the B
        watcher dies."""
        machine = Machine(parse_expression("A - B"), lambda t, e: None, start=0.0)
        assert len(machine.waiting_templates()) == 2
        machine.post(Event("A", (), timestamp=1.0))
        machine.advance_horizon(2.0)
        assert machine.waiting_templates() == []
        assert machine.exhausted

    def test_whenever_keeps_one_live_registration(self):
        machine = Machine(parse_expression("$A(x)"), lambda t, e: None, start=0.0)
        for i in range(5):
            machine.post(Event("A", (i,), timestamp=float(i + 1)))
        assert len(machine.waiting_templates()) == 1


class TestWalkthrough:
    """The extended example of section 6.7: Enter(A,R); Enter(B,R) - Leaves(A,R)."""

    EXPR = "Enter(A, R); Enter(B, R) - Leaves(A, R)"

    def test_second_person_enters(self):
        tr = trace(
            ("Enter", ("rjh21", "T14"), 1.0),
            ("Enter", ("tjm15", "T14"), 2.0),
        )
        signals, _ = run_machine(self.EXPR, tr, env={"A": "rjh21"})
        assert {t for t, _ in signals} == {2.0}
        [(_, env)] = [(t, dict(e)) for t, e in signals]
        assert env["B"] == "tjm15"
        assert env["R"] == "T14"

    def test_person_leaves_first(self):
        tr = trace(
            ("Enter", ("rjh21", "T14"), 1.0),
            ("Leaves", ("rjh21", "T14"), 2.0),
            ("Enter", ("tjm15", "T14"), 3.0),
        )
        signals, _ = run_machine(self.EXPR, tr, env={"A": "rjh21"})
        assert signals == set()

    def test_oracle_agreement(self):
        tr = trace(
            ("Enter", ("rjh21", "T14"), 1.0),
            ("Leaves", ("rjh21", "T14"), 2.0),
            ("Enter", ("rjh21", "T15"), 3.0),
            ("Enter", ("tjm15", "T15"), 4.0),
        )
        signals, _ = run_machine(self.EXPR, tr, env={"A": "rjh21"})
        assert signals == oracle(self.EXPR, tr, env={"A": "rjh21"})


# -------------------------------------------------------- machine == Φ oracle

_EVENT_NAMES = ["A", "B", "C"]


@st.composite
def _traces(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    events = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
        name = draw(st.sampled_from(_EVENT_NAMES))
        arg = draw(st.integers(min_value=1, max_value=3))
        events.append(Event(name, (arg,), timestamp=round(t, 3)))
    return events


@st.composite
def _expressions(draw, depth=0):
    if depth >= 3:
        choices = ["template", "null"]
    else:
        choices = ["template", "null", "seq", "or", "without", "whenever", "template"]
    kind = draw(st.sampled_from(choices))
    if kind == "template":
        name = draw(st.sampled_from(_EVENT_NAMES))
        param = draw(
            st.one_of(
                st.sampled_from(["x", "y"]),              # variable
                st.integers(min_value=1, max_value=3),     # literal
                st.just("*"),
            )
        )
        param_text = param if isinstance(param, str) else str(param)
        return f"{name}({param_text})"
    if kind == "null":
        return "null"
    if kind == "seq":
        return f"({draw(_expressions(depth + 1))}; {draw(_expressions(depth + 1))})"
    if kind == "or":
        return f"({draw(_expressions(depth + 1))} | {draw(_expressions(depth + 1))})"
    if kind == "without":
        return f"({draw(_expressions(depth + 1))} - {draw(_expressions(depth + 1))})"
    return f"$({draw(_expressions(depth + 1))})"


@given(_expressions(), _traces())
@settings(max_examples=300, deadline=None)
def test_machine_equals_denotational_semantics(source, events):
    """INVARIANT: in-order delivery with trailing horizon makes the bead
    machine signal exactly Φ's occurrence set."""
    expected = oracle(source, events)
    signals, _ = run_machine(source, events)
    assert signals == expected
