"""Tests for the open meeting (sections 3.4.2 and 3.3.2)."""

import pytest

from repro.errors import EntryDenied, MisuseError, RevokedError
from repro.services.meeting import MeetingService


@pytest.fixture
def meeting_world(auth):
    staff = {
        auth.pw.parsename("userid", "dm"),
        auth.pw.parsename("userid", "jmb"),
    }
    meeting = MeetingService(
        "Weekly",
        chair_user="jmb",
        staff=staff,
        registry=auth.registry,
        linkage=auth.linkage,
        clock=auth.clock,
    )
    return auth, meeting


def test_chair_joins(meeting_world):
    auth, meeting = meeting_world
    _, jmb_login = auth.login_user(auth.console, "jmb", "correcthorse")
    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    assert chair.names_role("Chair")


def test_non_chair_user_cannot_chair(meeting_world):
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.console, "dm", "hunter2")
    with pytest.raises(EntryDenied):
        meeting.join_as_chair(dm_login.client, dm_login)


def test_staff_join_directly(meeting_world):
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)
    assert member.names_role("Member")


def test_non_staff_cannot_join_directly(meeting_world):
    auth, meeting = meeting_world
    auth.pw.set_password("guest", "pw")
    _, guest_login = auth.login_user(auth.cafe, "guest", "pw")
    with pytest.raises(EntryDenied):
        meeting.join(guest_login.client, guest_login)


def test_any_member_invites_outsider(meeting_world):
    """Unrestricted recursive delegation: members invite non-staff."""
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)

    auth.pw.set_password("guest", "pw")
    _, guest_login = auth.login_user(auth.cafe, "guest", "pw")
    invitation, _ = meeting.invite(member)
    guest_member = meeting.accept_invitation(
        guest_login.client, invitation, guest_login
    )
    assert guest_member.names_role("Member")


def test_invitation_is_recursive(meeting_world):
    """An invited member may invite someone else in turn."""
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)

    for name in ("g1", "g2", "g3"):
        auth.pw.set_password(name, "pw")
        _, new_login = auth.login_user(auth.cafe, name, "pw")
        invitation, _ = meeting.invite(member)
        member = meeting.accept_invitation(new_login.client, invitation, new_login)
    assert member.names_role("Member")


def test_chair_ejects_any_member(meeting_world):
    """Section 3.3.2: the Chair ejects members they did not elect."""
    auth, meeting = meeting_world
    _, jmb_login = auth.login_user(auth.console, "jmb", "correcthorse")
    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)

    revoked = meeting.eject(chair, auth.pw.parsename("userid", "dm"))
    assert revoked >= 1
    with pytest.raises(RevokedError):
        meeting.validate(member)


def test_ejected_member_cannot_rejoin(meeting_world):
    auth, meeting = meeting_world
    _, jmb_login = auth.login_user(auth.console, "jmb", "correcthorse")
    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    meeting.join(dm_login.client, dm_login)
    meeting.eject(chair, auth.pw.parsename("userid", "dm"))
    with pytest.raises(EntryDenied):
        meeting.join(dm_login.client, dm_login)


def test_readmission(meeting_world):
    auth, meeting = meeting_world
    _, jmb_login = auth.login_user(auth.console, "jmb", "correcthorse")
    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    meeting.join(dm_login.client, dm_login)
    dm_uid = auth.pw.parsename("userid", "dm")
    meeting.eject(chair, dm_uid)
    meeting.readmit(chair, dm_uid)
    fresh = meeting.join(dm_login.client, dm_login)
    meeting.validate(fresh)


def test_member_cannot_eject(meeting_world):
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)
    with pytest.raises(MisuseError):
        meeting.eject(member, auth.pw.parsename("userid", "jmb"))


def test_logout_cascades_to_membership(meeting_world):
    auth, meeting = meeting_world
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    member = meeting.join(dm_login.client, dm_login)
    auth.login.logout(dm_login)
    with pytest.raises(RevokedError):
        meeting.validate(member)


def test_inviter_ejection_cascades_to_invitee(meeting_world):
    """The invitation chain is starred (<|*), so ejecting the inviter
    revokes memberships derived from their delegation, but the chair's own
    ejection database tracks the invitee separately."""
    auth, meeting = meeting_world
    _, jmb_login = auth.login_user(auth.console, "jmb", "correcthorse")
    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    _, dm_login = auth.login_user(auth.office, "dm", "hunter2")
    dm_member = meeting.join(dm_login.client, dm_login)
    auth.pw.set_password("guest", "pw")
    _, guest_login = auth.login_user(auth.cafe, "guest", "pw")
    invitation, _ = meeting.invite(dm_member, )
    guest_member = meeting.accept_invitation(guest_login.client, invitation, guest_login)

    # eject the guest directly
    meeting.eject(chair, auth.pw.parsename("userid", "guest"))
    with pytest.raises(RevokedError):
        meeting.validate(guest_member)
    meeting.validate(dm_member)  # the inviter is unaffected
