"""Tests for interworking with non-Oasis mechanisms (section 4.12)."""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.core.types import ObjectType
from repro.errors import AccessDenied, EntryDenied, RevokedError
from repro.services.legacy import (
    LegacyRoleSystem,
    NfsStyleServer,
    OrganisationalRoleAdapter,
)


@pytest.fixture
def org_world():
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    legacy = LegacyRoleSystem()
    legacy.assign("alice", "Manager")
    adapter = OrganisationalRoleAdapter(
        "OrgRoles", legacy, registry=registry, linkage=linkage
    )
    host = HostOS("h")
    return registry, linkage, legacy, adapter, host


class TestOrganisationalRoleAdapter:
    def test_held_legacy_role_issues_certificate(self, org_world):
        registry, linkage, legacy, adapter, host = org_world
        client = host.create_domain().client_id
        cert = adapter.enter_legacy_role(client, "alice", "Manager")
        assert cert.names_role("Manager")
        adapter.validate(cert, claimed_client=client)

    def test_unheld_legacy_role_denied(self, org_world):
        registry, linkage, legacy, adapter, host = org_world
        client = host.create_domain().client_id
        with pytest.raises(EntryDenied):
            adapter.enter_legacy_role(client, "bob", "Manager")

    def test_unadapted_role_denied(self, org_world):
        registry, linkage, legacy, adapter, host = org_world
        client = host.create_domain().client_id
        with pytest.raises(EntryDenied):
            adapter.enter_legacy_role(client, "alice", "Janitor")

    def test_legacy_retraction_revokes(self, org_world):
        """The two schemes interwork: firing Alice in the legacy system
        revokes her Oasis certificate."""
        registry, linkage, legacy, adapter, host = org_world
        client = host.create_domain().client_id
        cert = adapter.enter_legacy_role(client, "alice", "Manager")
        legacy.retract("alice", "Manager")
        with pytest.raises(RevokedError):
            adapter.validate(cert)

    def test_retraction_cascades_into_oasis_services(self, org_world):
        """A downstream Oasis service built on adapted roles revokes too."""
        registry, linkage, legacy, adapter, host = org_world
        approvals = OasisService("Approvals", registry=registry, linkage=linkage)
        approvals.add_rolefile("main", "Approver(u) <- OrgRoles.Manager(u)*\n")
        client = host.create_domain().client_id
        manager = adapter.enter_legacy_role(client, "alice", "Manager")
        approver = approvals.enter_role(client, "Approver", credentials=(manager,))
        approvals.validate(approver)
        legacy.retract("alice", "Manager")
        with pytest.raises(RevokedError):
            approvals.validate(approver)

    def test_reassignment_allows_fresh_certificate(self, org_world):
        registry, linkage, legacy, adapter, host = org_world
        client = host.create_domain().client_id
        adapter.enter_legacy_role(client, "alice", "Manager")
        legacy.retract("alice", "Manager")
        legacy.assign("alice", "Manager")
        fresh = adapter.enter_legacy_role(client, "alice", "Manager")
        adapter.validate(fresh)


class TestNfsStyleServer:
    @pytest.fixture
    def nfs_world(self):
        registry = ServiceRegistry()
        linkage = LocalLinkage()
        login = OasisService("Login", registry=registry, linkage=linkage)
        login.export_type(ObjectType("Login.userid"), "userid")
        login.add_rolefile(
            "main", "def LoggedOn(u, h)  u: userid  h: string\nLoggedOn(u, h) <- "
        )
        nfs = NfsStyleServer(
            "nfs", login, user_groups=lambda u: {"staff"} if u in ("dm",) else set()
        )
        nfs.export("/home/rjh21/thesis", "rjh21=rw staff=r other=-", b"chapter 1")
        host = HostOS("ws")
        return login, nfs, host

    def login_as(self, login, host, user):
        client = host.create_domain().client_id
        return client, login.enter_role(client, "LoggedOn", (user, "ws"))

    def test_owner_reads_and_writes(self, nfs_world):
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "rjh21")
        assert nfs.read(cert, "/home/rjh21/thesis", client=client) == b"chapter 1"
        nfs.write(cert, "/home/rjh21/thesis", b"chapter 2", client=client)

    def test_group_member_read_only(self, nfs_world):
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "dm")
        assert nfs.read(cert, "/home/rjh21/thesis") == b"chapter 1"
        with pytest.raises(AccessDenied):
            nfs.write(cert, "/home/rjh21/thesis", b"vandalism")

    def test_other_denied(self, nfs_world):
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "guest")
        with pytest.raises(AccessDenied):
            nfs.read(cert, "/home/rjh21/thesis")

    def test_oasis_revocation_reaches_legacy_server(self, nfs_world):
        """The legacy server benefits from Oasis revocation for free:
        validation goes through the issuing service."""
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "rjh21")
        login.exit_role(cert)
        with pytest.raises(RevokedError):
            nfs.read(cert, "/home/rjh21/thesis")

    def test_stolen_certificate_rejected(self, nfs_world):
        from repro.errors import FraudError
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "rjh21")
        thief = host.create_domain().client_id
        with pytest.raises(FraudError):
            nfs.read(cert, "/home/rjh21/thesis", client=thief)

    def test_unknown_export(self, nfs_world):
        login, nfs, host = nfs_world
        client, cert = self.login_as(login, host, "rjh21")
        with pytest.raises(AccessDenied):
            nfs.read(cert, "/nope")
