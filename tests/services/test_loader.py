"""Tests for the loader service and high score table policy (section 3.4.1)."""

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.errors import EntryDenied, RevokedError
from repro.services.loader import ClientLoader, LoaderService

GAME_IMAGE = b"\x7fELF...the game binary..."


def make_world():
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    loader = LoaderService(registry=registry, linkage=linkage)
    loader.trust_host("arcade")
    loader.publish_image("game", GAME_IMAGE)
    host = HostOS("arcade")
    client_loader = ClientLoader("arcade")
    return registry, linkage, loader, host, client_loader


def test_certify_trusted_load():
    registry, linkage, loader, host, cl = make_world()
    proc = host.create_domain()
    report = cl.load(proc.client_id, "game", GAME_IMAGE)
    cert = loader.certify(report)
    assert cert.names_role("Running")
    assert cert.args[1] == "arcade"
    loader.validate(cert, claimed_client=proc.client_id)


def test_untrusted_host_rejected():
    registry, linkage, loader, host, cl = make_world()
    rogue_host = HostOS("basement")
    rogue_loader = ClientLoader("basement")
    proc = rogue_host.create_domain()
    report = rogue_loader.load(proc.client_id, "game", GAME_IMAGE)
    with pytest.raises(EntryDenied, match="not trusted"):
        loader.certify(report)


def test_tampered_image_rejected():
    registry, linkage, loader, host, cl = make_world()
    proc = host.create_domain()
    report = cl.load(proc.client_id, "game", GAME_IMAGE + b"\x90\x90")
    with pytest.raises(EntryDenied, match="digest mismatch"):
        loader.certify(report)


def test_unpublished_program_rejected():
    registry, linkage, loader, host, cl = make_world()
    proc = host.create_domain()
    report = cl.load(proc.client_id, "virus", b"bad")
    with pytest.raises(EntryDenied, match="no published image"):
        loader.certify(report)


def test_mismatched_report_host_rejected():
    """A trusted host cannot vouch for processes on another machine."""
    registry, linkage, loader, host, cl = make_world()
    other = HostOS("elsewhere").create_domain()
    report = cl.load(other.client_id, "game", GAME_IMAGE)
    with pytest.raises(EntryDenied, match="does not match"):
        loader.certify(report)


def test_process_exit_revokes():
    registry, linkage, loader, host, cl = make_world()
    proc = host.create_domain()
    cert = loader.certify(cl.load(proc.client_id, "game", GAME_IMAGE))
    loader.process_exited(proc.client_id)
    with pytest.raises(RevokedError):
        loader.validate(cert)


def test_high_score_table_policy():
    """The full section 3.4.1 scenario: only the game writes the table,
    any logged-in user reads it."""
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    loader = LoaderService(registry=registry, linkage=linkage)
    loader.trust_host("arcade")
    loader.publish_image("game", GAME_IMAGE)

    from repro.core.types import ObjectType
    login = OasisService("Login", registry=registry, linkage=linkage)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", "def LoggedOn(u, h)  u: userid  h: string\nLoggedOn(u, h) <- ")

    scores = OasisService("Scores", registry=registry, linkage=linkage)
    scores.add_rolefile("main", """
import Loader.program
import Login.userid
Writer <- Loader.Running("game", h)
Reader <- Login.LoggedOn(u, h)
""")

    host = HostOS("arcade")
    cl = ClientLoader("arcade")
    game_proc = host.create_domain()
    game_cert = loader.certify(cl.load(game_proc.client_id, "game", GAME_IMAGE))
    writer = scores.enter_role(game_proc.client_id, "Writer", credentials=(game_cert,))
    assert writer.names_role("Writer")

    user_proc = host.create_domain()
    user_cert = login.enter_role(user_proc.client_id, "LoggedOn", ("dm", "arcade"))
    reader = scores.enter_role(user_proc.client_id, "Reader", credentials=(user_cert,))
    assert reader.names_role("Reader")

    # an ordinary user may not become a Writer
    with pytest.raises(EntryDenied):
        scores.enter_role(user_proc.client_id, "Writer", credentials=(user_cert,))
