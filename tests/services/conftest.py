"""Fixtures: password + login + hosts, shared by the service tests."""

import pytest

from repro.core import HostOS, ServiceRegistry
from repro.core.linkage import LocalLinkage
from repro.runtime.clock import ManualClock
from repro.services.login import LoginService
from repro.services.password import PasswordService


class AuthWorld:
    def __init__(self):
        self.clock = ManualClock()
        self.registry = ServiceRegistry()
        self.linkage = LocalLinkage()
        self.pw = PasswordService(
            registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login = LoginService(
            registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.pw.set_password("dm", "hunter2")
        self.pw.set_password("jmb", "correcthorse")
        self.login.add_secure_host("console")
        self.login.add_known_host("office")
        self.console = HostOS("console")
        self.office = HostOS("office")
        self.cafe = HostOS("cafe")

    def login_user(self, host_os, user, password):
        domain = host_os.create_domain()
        pw_cert = self.pw.authenticate(domain.client_id, user, password)
        return domain, self.login.login(domain.client_id, pw_cert)


@pytest.fixture
def auth():
    return AuthWorld()
