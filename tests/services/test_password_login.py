"""Tests for the password and multi-level login services (section 3.4.3)."""

import pytest

from repro.errors import EntryDenied, RevokedError
from repro.services.login import KNOWN, SECURE, UNKNOWN_HOST, VISITOR


class TestPasswordService:
    def test_correct_password_issues_certificate(self, auth):
        domain = auth.console.create_domain()
        cert = auth.pw.authenticate(domain.client_id, "dm", "hunter2")
        assert cert.names_role("Passwd")
        assert cert.args[1] == "Login"
        auth.pw.validate(cert)

    def test_wrong_password_denied(self, auth):
        domain = auth.console.create_domain()
        with pytest.raises(EntryDenied, match="bad password"):
            auth.pw.authenticate(domain.client_id, "dm", "wrong")
        assert auth.pw.failed_attempts == 1

    def test_unknown_user_denied(self, auth):
        domain = auth.console.create_domain()
        with pytest.raises(EntryDenied, match="unknown user"):
            auth.pw.authenticate(domain.client_id, "nobody", "x")

    def test_purpose_parameter(self, auth):
        domain = auth.console.create_domain()
        cert = auth.pw.authenticate(domain.client_id, "dm", "hunter2", purpose="Mail")
        assert cert.args[1] == "Mail"

    def test_change_password(self, auth):
        auth.pw.change_password("dm", "hunter2", "newpass")
        domain = auth.console.create_domain()
        with pytest.raises(EntryDenied):
            auth.pw.authenticate(domain.client_id, "dm", "hunter2")
        auth.pw.authenticate(domain.client_id, "dm", "newpass")

    def test_change_password_requires_old(self, auth):
        with pytest.raises(EntryDenied):
            auth.pw.change_password("dm", "wrong", "newpass")

    def test_passwords_not_stored_in_clear(self, auth):
        stored = repr(auth.pw._passwords)
        assert "hunter2" not in stored


class TestLoginLevels:
    def test_secure_console_gets_level_3(self, auth):
        _, cert = auth.login_user(auth.console, "dm", "hunter2")
        assert auth.login.level_of(cert) == SECURE

    def test_known_host_gets_level_2(self, auth):
        _, cert = auth.login_user(auth.office, "dm", "hunter2")
        assert auth.login.level_of(cert) == KNOWN

    def test_unknown_host_gets_level_1(self, auth):
        _, cert = auth.login_user(auth.cafe, "dm", "hunter2")
        assert auth.login.level_of(cert) == UNKNOWN_HOST

    def test_first_matching_rule_wins(self, auth):
        """A secure host is also in 'hosts'; the level-3 rule fires first
        (the paper's note about rule ordering)."""
        _, cert = auth.login_user(auth.console, "jmb", "correcthorse")
        assert cert.args[0] == SECURE

    def test_explicit_lower_level_honoured(self, auth):
        domain = auth.console.create_domain()
        pw_cert = auth.pw.authenticate(domain.client_id, "dm", "hunter2")
        cert = auth.login.login(domain.client_id, pw_cert, level=1)
        assert auth.login.level_of(cert) == 1

    def test_visitor_login_needs_no_password(self, auth):
        domain = auth.cafe.create_domain()
        cert = auth.login.login(domain.client_id, user="guest")
        assert auth.login.level_of(cert) == VISITOR

    def test_visitor_cannot_claim_higher_level(self, auth):
        domain = auth.cafe.create_domain()
        with pytest.raises(ValueError):
            auth.login.login(domain.client_id, level=2, user="guest")

    def test_logout_revokes(self, auth):
        _, cert = auth.login_user(auth.console, "dm", "hunter2")
        auth.login.logout(cert)
        with pytest.raises(RevokedError):
            auth.login.validate(cert)

    def test_password_cert_revocation_cascades_to_login(self, auth):
        """The Passwd credential is starred in the login rules, so
        revoking it at the password service revokes the login."""
        domain = auth.console.create_domain()
        pw_cert = auth.pw.authenticate(domain.client_id, "dm", "hunter2")
        login_cert = auth.login.login(domain.client_id, pw_cert)
        auth.pw.exit_role(pw_cert)
        with pytest.raises(RevokedError):
            auth.login.validate(login_cert)

    def test_visitor_login_survives_nothing_to_revoke(self, auth):
        domain = auth.cafe.create_domain()
        cert = auth.login.login(domain.client_id, user="guest")
        auth.login.validate(cert)
