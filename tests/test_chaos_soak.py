"""Seeded chaos soak (ISSUE 5 acceptance).

Three services — a Login issuer, a plain consuming service and a
flat-file custode — run ~600 operations while a seeded fault plan
flaps links, partitions the network, drops/duplicates/reorders
messages and crash-restarts services.  Throughout, the fail-closed
invariant is swept: no access is ever granted through a surrogate
that is not TRUE at its issuer (beyond the propagation allowance).
After the faults cease, every external record converges to issuer
truth within a bounded settle time.

Everything is seeded: a failure replays exactly.
"""

import random

import pytest

from repro.core import HostOS, OasisService, ServiceRegistry
from repro.core.linkage import SimLinkage
from repro.core.types import ObjectType
from repro.errors import AccessDenied, OasisError, RevokedError
from repro.mssa.acl import Acl
from repro.mssa.byte_segment import ByteSegmentCustode
from repro.runtime.clock import SimClock
from repro.runtime.faults import ChaosController, FaultPlan, InvariantChecker
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

LOGIN_RDL = """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
"""

FILES_RDL = """
import Login.userid
Reader(u) <- Login.LoggedOn(u, h)*
"""

SEED = 1105
DURATION = 120.0          # fault window (virtual seconds)
SETTLE = 40.0             # convergence allowance after the last fault
OPS_TARGET = 600
HEARTBEAT_PERIOD = 1.0
HEARTBEAT_GRACE = 2.0
MAX_OUTAGE = 8.0
# propagation allowance: suspicion latency ((grace+1) periods) + the
# longest fault window that can mask traffic without tripping suspicion
# + nack-driven resend latency + margin
STALE_BOUND = MAX_OUTAGE + (HEARTBEAT_GRACE + 1.0) * HEARTBEAT_PERIOD + 5.0


class SoakWorld:
    def __init__(self, seed=SEED, sim_factory=Simulator):
        # sim_factory lets the kernel-equivalence tests run the identical
        # soak on the heap-only baseline kernel (see test_fleet_soak.py)
        self.sim = sim_factory()
        self.net = Network(self.sim, seed=seed, default_delay=0.01)
        self.clock = SimClock(self.sim)
        self.registry = ServiceRegistry()
        self.linkage = SimLinkage(self.net)
        self.login = OasisService(
            "Login", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.login.export_type(ObjectType("Login.userid"), "userid")
        self.login.add_rolefile("main", LOGIN_RDL)
        self.files = OasisService(
            "Files", registry=self.registry, linkage=self.linkage, clock=self.clock
        )
        self.files.add_rolefile("main", FILES_RDL)
        self.ffc = ByteSegmentCustode(
            "ffc",
            registry=self.registry,
            linkage=self.linkage,
            clock=self.clock,
            user_groups=lambda u: {"staff"},
        )
        self.services = {
            "Login": self.login,
            "Files": self.files,
            "ffc": self.ffc.service,
        }
        for consumer in (self.files, self.ffc.service):
            self.linkage.monitor(
                self.login, consumer, period=HEARTBEAT_PERIOD, grace=HEARTBEAT_GRACE
            )
        self.host = HostOS("soak-host")
        self.acl = self.ffc.create_acl(
            Acl.parse("@staff=+r admin=+rwad", alphabet="rwad")
        )
        self.acl_open = Acl.parse("@staff=+r admin=+rwad", alphabet="rwad")
        self.acl_admin_only = Acl.parse("admin=+rwad", alphabet="rwad")
        self.fid = self.ffc.create_segment(self.acl, b"soak payload")
        # the admin session drives modify_acl and is never logged out
        admin_domain = self.host.create_domain()
        self.admin_domain_client = admin_domain.client_id
        self.admin_login = self.login.enter_role(
            self.admin_domain_client, "LoggedOn", ("admin", "soak-host")
        )
        self.admin_cert = self.ffc.enter_use_acl(
            self.admin_domain_client, self.acl, self.admin_login
        )
        self.rng = random.Random(f"soak-ops:{seed}")
        self.sessions = []    # [{user, login_cert, reader, use_acl}]
        self.counts = {
            "login": 0, "exit": 0, "enter": 0, "validate": 0,
            "read": 0, "modify_acl": 0, "skipped_down": 0,
        }
        self.denials = 0
        self.next_user = 0
        self.ops_done = 0
        self._acl_is_open = True

    # ------------------------------------------------------------- operations

    def up(self, name):
        return not self.chaos.is_down(name)

    def step(self):
        self.ops_done += 1
        op = self.rng.choices(
            ["login", "exit", "enter", "validate", "read", "modify_acl"],
            weights=[3, 2, 3, 5, 5, 1],
        )[0]
        try:
            getattr(self, "_op_" + op)()
        except (RevokedError, AccessDenied):
            self.denials += 1
        except OasisError:
            # e.g. entering with a certificate revoked mid-flight: the
            # soak cares about safety, not liveness of individual ops
            self.denials += 1

    def _op_login(self):
        if not self.up("Login"):
            self.counts["skipped_down"] += 1
            return
        user = f"u{self.next_user}"
        self.next_user += 1
        domain = self.host.create_domain()
        cert = self.login.enter_role(
            domain.client_id, "LoggedOn", (user, "soak-host")
        )
        self.sessions.append(
            {"user": user, "client": domain.client_id,
             "login_cert": cert, "reader": None, "use_acl": None}
        )
        self.counts["login"] += 1

    def _op_exit(self):
        if not self.up("Login") or not self.sessions:
            self.counts["skipped_down"] += 1
            return
        session = self.rng.choice(self.sessions)
        self.sessions.remove(session)
        self.login.exit_role(session["login_cert"])
        self.counts["exit"] += 1

    def _op_enter(self):
        if not self.sessions:
            return
        session = self.rng.choice(self.sessions)
        if session["reader"] is None and self.up("Files"):
            session["reader"] = self.files.enter_role(
                session["client"], "Reader", credentials=(session["login_cert"],)
            )
            self.counts["enter"] += 1
        elif session["use_acl"] is None and self.up("ffc"):
            session["use_acl"] = self.ffc.enter_use_acl(
                session["client"], self.acl, session["login_cert"]
            )
            self.counts["enter"] += 1
        else:
            self.counts["skipped_down"] += 1

    def _op_validate(self):
        candidates = [s for s in self.sessions if s["reader"] is not None]
        if not candidates or not self.up("Files"):
            self.counts["skipped_down"] += 1
            return
        session = self.rng.choice(candidates)
        self.counts["validate"] += 1
        self.files.validate(session["reader"])

    def _op_read(self):
        candidates = [s for s in self.sessions if s["use_acl"] is not None]
        if not candidates or not self.up("ffc"):
            self.counts["skipped_down"] += 1
            return
        session = self.rng.choice(candidates)
        self.counts["read"] += 1
        self.ffc.read_segment(session["use_acl"], self.fid)

    def _op_modify_acl(self):
        if not self.up("ffc"):
            self.counts["skipped_down"] += 1
            return
        new = self.acl_admin_only if self._acl_is_open else self.acl_open
        self._acl_is_open = not self._acl_is_open
        self.counts["modify_acl"] += 1
        self.ffc.modify_acl(self.admin_cert, self.acl, new)
        # every UseAcl certificate died with the version record; holders
        # will re-enter on later ops
        for session in self.sessions:
            session["use_acl"] = None
        self.admin_cert = self.ffc.enter_use_acl(
            self.admin_domain_client, self.acl, self.admin_login
        )

    # ------------------------------------------------------------------- run

    def run(self):
        plan = FaultPlan.random(
            seed=SEED,
            duration=DURATION,
            addresses=tuple(f"oasis:{n}" for n in self.services),
            services=tuple(self.services),
            link_flaps=4,
            partitions=3,
            loss_bursts=3,
            duplication_windows=3,
            reorder_windows=3,
            crashes=3,
            max_outage=MAX_OUTAGE,
        )
        self.chaos = ChaosController(
            self.net,
            plan,
            crash=lambda name: self.linkage.crash(self.services[name]),
            restart=lambda name: self.linkage.restart(self.services[name]),
        )
        self.checker = InvariantChecker(
            list(self.services.values()),
            stale_bound=STALE_BOUND,
            is_down=self.chaos.is_down,
        )
        self.chaos.arm()
        spacing = DURATION / OPS_TARGET
        for i in range(OPS_TARGET):
            self.sim.schedule_at(0.5 + i * spacing, self.step)
        sweeps = int(DURATION + SETTLE)
        for i in range(sweeps):
            self.sim.schedule_at(1.0 + i, self.checker.check_fail_closed)
        end = max(plan.horizon(), DURATION) + SETTLE
        self.sim.schedule_at(max(plan.horizon(), DURATION) + 1.0, self.chaos.disarm)
        self.sim.run_until(end)
        return plan


@pytest.fixture(scope="module")
def soak():
    world = SoakWorld()
    world.plan = world.run()
    return world


def test_soak_exercised_the_full_fault_taxonomy(soak):
    stats = soak.chaos.stats
    assert soak.ops_done >= 500
    assert stats.partitions >= 1 and stats.heals == stats.partitions
    assert stats.crashes >= 1 and stats.restarts == stats.crashes
    assert stats.link_flaps >= 1
    assert stats.messages_dropped >= 1
    assert stats.messages_duplicated >= 1
    assert stats.messages_reordered >= 1
    # the mix actually ran: every operation class fired
    for op in ("login", "exit", "enter", "validate", "read", "modify_acl"):
        assert soak.counts[op] >= 1, soak.counts


def test_soak_never_violates_fail_closed(soak):
    assert soak.checker.checks >= DURATION
    assert soak.checker.violations == [], "\n".join(
        str(v) for v in soak.checker.violations
    )


def test_soak_converges_after_faults_cease(soak):
    assert soak.checker.converged(), soak.checker.divergences()


def test_soak_recovery_machinery_was_used(soak):
    """The pass is meaningful only if the recovery paths actually ran."""
    monitors = soak.linkage._monitors.values()
    assert any(m.stats.suspicions >= 1 for m in monitors)
    assert sum(m.stats.epoch_changes for m in monitors) >= 1 or all(
        event.service not in ("Login",)
        for event in soak.plan.events
        if type(event).__name__ == "CrashRestart"
    )


def test_soak_replays_identically():
    """Same seed, same world: the chaos run is deterministic."""

    def fingerprint():
        world = SoakWorld()
        world.run()
        return (
            world.counts,
            world.denials,
            world.net.stats.messages_sent,
            world.chaos.stats,
            len(world.checker.violations),
        )

    assert fingerprint() == fingerprint()
