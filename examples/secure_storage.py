#!/usr/bin/env python3
"""The MSSA case study (chapter 5): a custode stack with shared ACLs.

Builds the fig 5.1 architecture — a byte segment custode, a flat file
custode over it, and an indexed value-adding custode on top — then
demonstrates shared ACLs, single-file delegation, volatile-ACL
revocation, and bypassing with validation callbacks (fig 5.8).

Run:  python examples/secure_storage.py
"""

from repro import HostOS, LocalLinkage, OasisService, ObjectType, ServiceRegistry
from repro.errors import AccessDenied, RevokedError
from repro.mssa import (
    Acl,
    ByteSegmentCustode,
    FlatFileCustode,
    IndexedFlatFileCustode,
)
from repro.mssa.bypass import BypassRoute

GROUPS = {"dm": {"opera"}, "jmb": {"opera"}, "student1": {"students"}}


def main() -> None:
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    login = OasisService("Login", registry=registry, linkage=linkage)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", "def LoggedOn(u, h)  u: userid  h: string\nLoggedOn(u, h) <- ")

    def make(cls, name):
        return cls(name, registry=registry, linkage=linkage,
                   user_groups=lambda u: GROUPS.get(u, set()))

    # -- the custode stack of fig 5.1 ---------------------------------------
    bsc = make(ByteSegmentCustode, "bsc")
    ffc = make(FlatFileCustode, "ffc")
    ifc = make(IndexedFlatFileCustode, "ifc")

    def custode_login(custode):
        return login.enter_role(
            custode.identity, "LoggedOn", (f"custode:{custode.name}", custode.identity.host)
        )

    ffc.wire_below(bsc, custode_login(ffc))
    ifc.wire_below(ffc, custode_login(ifc))
    print("custode stack: ifc -> ffc -> bsc")

    host = HostOS("ws1")

    def user_login(name):
        domain = host.create_domain()
        return domain.client_id, login.enter_role(domain.client_id, "LoggedOn", (name, "ws1"))

    # -- shared ACLs (fig 5.2b): one ACL, many files --------------------------
    empire = ffc.create_acl(Acl.parse("dm=+rwad @opera=+r @students=-rwad", alphabet="rwad"))
    files = [ffc.create(empire, f"chapter {i}".encode()) for i in range(5)]
    print(f"'Empire Private' ACL {empire} protects {len(ffc.files_protected_by(empire))} files")

    dm, dm_login = user_login("dm")
    dm_cert = ffc.enter_use_acl(dm, empire, dm_login)
    print(f"dm's UseAcl rights: {sorted(dm_cert.args[0])}")
    print(f"read: {ffc.read(dm_cert, files[0])!r}")

    jmb, jmb_login = user_login("jmb")
    jmb_cert = ffc.enter_use_acl(jmb, empire, jmb_login)
    print(f"jmb (opera group) rights: {sorted(jmb_cert.args[0])}")

    # -- single-file delegation (UseFile) ----------------------------------------
    student, student_login = user_login("student1")
    delegation, revocation = ffc.delegate_use_file(dm_cert, files[0], frozenset("r"))
    student_cert = ffc.accept_use_file(student, delegation, student_login)
    print(f"student delegated read on {files[0]}: {ffc.read(student_cert, files[0])!r}")
    try:
        ffc.read(student_cert, files[1])
    except AccessDenied as err:
        print(f"but not on other files: {err}")

    # -- volatile ACLs (5.5.2): editing the ACL revokes certificates ---------------
    # (the empire ACL is unprotected, so administration uses its own rolefile;
    # register dm as an administrator)
    ffc.add_admin(login.parsename("userid", "dm"))
    dm_admin = ffc.enter_use_acl(dm, empire, dm_login)
    ffc.modify_acl(dm_admin, empire, Acl.parse("dm=+rwad", alphabet="rwad"))
    try:
        ffc.read(jmb_cert, files[0])
    except RevokedError as err:
        print(f"ACL edited; jmb's certificate: {err}")

    # -- bypassing (5.6, fig 5.8) ------------------------------------------------------
    idx_acl = ifc.create_acl(Acl.parse("dm=+rwadl", alphabet="rwadl"))
    table = ifc.create(idx_acl)
    dm_idx = ifc.enter_use_acl(dm, idx_acl, dm_login)
    ifc.write_record(dm_idx, table, "greeting", b"hello world")
    print(f"\nindexed lookup: {ifc.lookup(dm_idx, table, 'greeting')!r}")

    route = BypassRoute.resolve(ifc, "read")
    data = route.read(dm_idx, table)
    print(f"bypassed read via {route.bottom.name}: {data!r}")
    print(f"ifc ops (not involved in bypass): {ifc.ops}, "
          f"ffc bypassed ops: {ffc.bypassed_ops}")
    # a second bypassed read hits the signature cache at the top
    route.read(dm_idx, table)
    print(f"validation cache hits at ifc: {ifc.service.stats.signature_cache_hits}")


if __name__ == "__main__":
    main()
