#!/usr/bin/env python3
"""Quickstart: roles, certificates, delegation and cascading revocation.

Reproduces the running example of chapters 2-4: a Login service issues
``LoggedOn`` certificates; a Conference service defines a ``Chair`` and
elects ``Member``s; revocation cascades between the services through
credential records.

Run:  python examples/quickstart.py
"""

from repro import (
    GroupService,
    HostOS,
    LocalLinkage,
    OasisService,
    ObjectType,
    RevokedError,
    ServiceRegistry,
)


def main() -> None:
    registry = ServiceRegistry()
    linkage = LocalLinkage()

    # -- the Login service: names clients with LoggedOn(user, host) ----------
    login = OasisService("Login", registry=registry, linkage=linkage)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile("main", """
def LoggedOn(u, h)  u: userid  h: string
LoggedOn(u, h) <-
""")
    uid = lambda name: login.parsename("userid", name)

    # -- the Conference service: policy in RDL --------------------------------
    groups = GroupService()
    groups.create_group("staff", {uid("jmb"), uid("dm")})
    conf = OasisService("Conf", registry=registry, linkage=linkage, groups=groups)
    conf.add_rolefile("main", """
Chair <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
""")
    print("Conference rolefile:")
    print(conf.rolefile())
    print()

    # -- two users log on ---------------------------------------------------------
    host = HostOS("ely")
    jmb = host.create_domain()
    dm = host.create_domain()
    jmb_login = login.enter_role(jmb.client_id, "LoggedOn", ("jmb", "ely"))
    dm_login = login.enter_role(dm.client_id, "LoggedOn", ("dm", "ely"))
    print(f"jmb logged on: {jmb_login}")
    print(f"dm  logged on: {dm_login}")

    # -- jmb becomes Chair using the foreign credential ----------------------------
    chair = conf.enter_role(jmb.client_id, "Chair", credentials=(jmb_login,))
    print(f"jmb chairs:    {chair}")

    # -- the Chair elects dm a Member -----------------------------------------------
    delegation, revocation = conf.delegate(chair, "Member")
    member = conf.enter_delegated_role(dm.client_id, delegation, credentials=(dm_login,))
    print(f"dm is elected: {member}")
    conf.validate(member, claimed_client=dm.client_id, required_role="Member")
    print("membership certificate validates\n")

    # -- revocation, three ways -------------------------------------------------------

    # 1. group change: dm leaves staff -> the starred (u in staff)* rule fails
    groups.remove_member("staff", uid("dm"))
    try:
        conf.validate(member)
    except RevokedError as err:
        print(f"1. group change revokes:        {err}")
    groups.add_member("staff", uid("dm"))
    member = conf.enter_delegated_role(dm.client_id, delegation, credentials=(dm_login,))

    # 2. the delegator changes their mind -> revocation certificate
    conf.revoke(revocation)
    try:
        conf.validate(member)
    except RevokedError as err:
        print(f"2. revocation cert revokes:     {err}")
    delegation, revocation = conf.delegate(chair, "Member")
    member = conf.enter_delegated_role(dm.client_id, delegation, credentials=(dm_login,))

    # 3. dm logs out -> the cascade crosses from Login to Conf (fig 4.8)
    login.exit_role(dm_login)
    try:
        conf.validate(member)
    except RevokedError as err:
        print(f"3. cross-service logout revokes: {err}")

    print()
    print(f"Login audit entries: {len(login.audit)}")
    print(f"Conf  audit entries: {len(conf.audit)}")
    print(f"Conf credential records created: {conf.credentials.records_created}")


if __name__ == "__main__":
    main()
