#!/usr/bin/env python3
"""The open meeting (sections 3.4.2 / 3.3.2) on the full auth stack.

Password service -> multi-level login -> meeting service: staff join
directly, any member may invite an outsider (recursive delegation), and
the Chair may eject anyone — including members they did not elect — via
role-based revocation, with hire/fire/re-hire semantics.

Run:  python examples/open_meeting.py
"""

from repro import HostOS, LocalLinkage, ServiceRegistry
from repro.errors import EntryDenied, RevokedError
from repro.services import LoginService, MeetingService, PasswordService


def main() -> None:
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    pw = PasswordService(registry=registry, linkage=linkage)
    login = LoginService(registry=registry, linkage=linkage)
    login.add_secure_host("console")

    for user, secret in [("jmb", "chair-pw"), ("dm", "staff-pw"), ("visitor", "guest-pw")]:
        pw.set_password(user, secret)

    meeting = MeetingService(
        "OperaWeekly",
        chair_user="jmb",
        staff={pw.parsename("userid", "jmb"), pw.parsename("userid", "dm")},
        registry=registry,
        linkage=linkage,
    )
    print(f"meeting rolefile:\n{meeting.rolefile()}\n")

    console = HostOS("console")

    def log_on(user, secret):
        domain = console.create_domain()
        passwd = pw.authenticate(domain.client_id, user, secret)
        return login.login(domain.client_id, passwd)

    jmb_login = log_on("jmb", "chair-pw")
    dm_login = log_on("dm", "staff-pw")
    visitor_login = log_on("visitor", "guest-pw")
    print(f"jmb login level: {login.level_of(jmb_login)} (secure console)")

    chair = meeting.join_as_chair(jmb_login.client, jmb_login)
    dm_member = meeting.join(dm_login.client, dm_login)
    print("jmb chairs; dm joins as staff")

    # visitors cannot join directly...
    try:
        meeting.join(visitor_login.client, visitor_login)
    except EntryDenied:
        print("visitor cannot join directly (not staff)")

    # ...but any member may invite them (recursive delegation)
    invitation, _ = meeting.invite(dm_member)
    visitor_member = meeting.accept_invitation(
        visitor_login.client, invitation, visitor_login
    )
    print("dm invites the visitor - accepted")

    # the Chair ejects the visitor (role-based revocation: the Chair did
    # not elect them, yet may revoke by role parameters alone)
    visitor_uid = pw.parsename("userid", "visitor")
    meeting.eject(chair, visitor_uid)
    try:
        meeting.validate(visitor_member)
    except RevokedError as err:
        print(f"ejected: {err}")
    try:
        meeting.accept_invitation(visitor_login.client, invitation, visitor_login)
    except EntryDenied as err:
        print(f"and barred from re-entry: {err}")

    # hire / fire / re-hire: the Chair relents
    meeting.readmit(chair, visitor_uid)
    visitor_member = meeting.accept_invitation(
        visitor_login.client, invitation, visitor_login
    )
    meeting.validate(visitor_member)
    print("readmitted after the Chair relents")

    # logging out cascades through password -> login -> meeting
    login.logout(dm_login)
    try:
        meeting.validate(dm_member)
    except RevokedError:
        print("dm logs out; meeting membership gone (cross-service cascade)")

    members = meeting.audit.current_members()
    print(f"\ncurrent members by audit: "
          f"{sorted(str(k) for k, v in members.items() if v)}")


if __name__ == "__main__":
    main()
