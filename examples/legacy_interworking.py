#!/usr/bin/env python3
"""Interworking with non-Oasis mechanisms (section 4.12), both ways.

1. A legacy organisational-role system (Manager / ProjectLeader) is
   wrapped by an adapter that issues equivalent Oasis roles; retracting
   an assignment in the legacy system revokes the Oasis certificates —
   and everything built on them.
2. An NFS-style file server is amended to accept Oasis certificates:
   it extracts the user name and applies its own Unix-style export ACLs
   ("Oasis manages names, not access rights").

Run:  python examples/legacy_interworking.py
"""

from repro import HostOS, LocalLinkage, OasisService, ObjectType, ServiceRegistry
from repro.errors import AccessDenied, RevokedError
from repro.services.legacy import (
    LegacyRoleSystem,
    NfsStyleServer,
    OrganisationalRoleAdapter,
)


def main() -> None:
    registry = ServiceRegistry()
    linkage = LocalLinkage()
    host = HostOS("hq")

    # ---- direction 1: legacy roles -> Oasis roles --------------------------
    print("--- organisational-role adapter ---")
    hr_system = LegacyRoleSystem()                 # the closed legacy system
    hr_system.assign("alice", "Manager")
    adapter = OrganisationalRoleAdapter(
        "OrgRoles", hr_system, registry=registry, linkage=linkage
    )

    # an Oasis service grants approval powers to (adapted) managers
    approvals = OasisService("Approvals", registry=registry, linkage=linkage)
    approvals.add_rolefile("main", "Approver(u) <- OrgRoles.Manager(u)*\n")

    alice = host.create_domain().client_id
    manager = adapter.enter_legacy_role(alice, "alice", "Manager")
    approver = approvals.enter_role(alice, "Approver", credentials=(manager,))
    print(f"alice is {manager} and therefore {approver}")

    hr_system.retract("alice", "Manager")          # HR fires alice
    try:
        approvals.validate(approver)
    except RevokedError:
        print("HR retracts the legacy role -> the Oasis approval power is revoked")

    # ---- direction 2: Oasis certificates at a legacy server ---------------------
    print("\n--- NFS-style server accepting Oasis certificates ---")
    login = OasisService("Login", registry=registry, linkage=linkage)
    login.export_type(ObjectType("Login.userid"), "userid")
    login.add_rolefile(
        "main", "def LoggedOn(u, h)  u: userid  h: string\nLoggedOn(u, h) <- "
    )
    nfs = NfsStyleServer("nfs", login,
                         user_groups=lambda u: {"staff"} if u == "dm" else set())
    nfs.export("/export/thesis", "rjh21=rw staff=r other=-", b"chapter 1")

    rjh = host.create_domain().client_id
    rjh_login = login.enter_role(rjh, "LoggedOn", ("rjh21", "hq"))
    print(f"owner read:  {nfs.read(rjh_login, '/export/thesis', client=rjh)!r}")

    dm = host.create_domain().client_id
    dm_login = login.enter_role(dm, "LoggedOn", ("dm", "hq"))
    print(f"staff read:  {nfs.read(dm_login, '/export/thesis')!r}")
    try:
        nfs.write(dm_login, "/export/thesis", b"edit")
    except AccessDenied:
        print("staff write: denied by the server's own Unix ACL")

    login.exit_role(rjh_login)
    try:
        nfs.read(rjh_login, "/export/thesis")
    except RevokedError:
        print("after logout: the legacy server sees the Oasis revocation too")


if __name__ == "__main__":
    main()
