#!/usr/bin/env python3
"""The squash (racket ball) scoreboard (section 6.6, Gehani's example).

Detects the end of a point from base events (serve, hit, floor, wall,
front) using the composite event language, then collapses the multiple
simultaneously-true end conditions into one signal per point with the
``Once`` aggregation function (section 6.9's motivating requirement).

Run:  python examples/squash_scoreboard.py
"""

from repro import Event, ManualClock
from repro.events.aggregation.functions import Once, attach
from repro.events.composite.detector import CompositeEventDetector

END_OF_POINT = """
$serve(s); (((floor | wall | hit(i)) - front)
  | ($front; ((floor; floor) | front) - hit(i))
  | ($hit(i); (floor | hit(j)) - front)
  | (hit(s) - hit(i) {i != s})
  | ($hit(i); hit(i) - hit(j) {j != i}))
""".strip().replace("\n", " ")

# a rally: (event, args, time)
GAME = [
    # point 1: player 1 serves, good rally, then double bounce at t=6
    ("serve", (1,), 1.0),
    ("front", (), 1.5),
    ("hit", (2,), 2.0),
    ("front", (), 2.5),
    ("hit", (1,), 3.0),
    ("front", (), 3.5),
    ("hit", (2,), 4.0),
    ("front", (), 4.5),
    ("floor", (), 5.0),
    ("floor", (), 6.0),          # double bounce: end of point
    # point 2: player 2 serves into the floor (fault) at t=11
    ("serve", (2,), 10.0),
    ("floor", (), 11.0),         # fails to hit the front wall first
    # point 3: player 1 serves, player 2 returns, player 2 hits twice
    ("serve", (1,), 20.0),
    ("front", (), 20.5),
    ("hit", (2,), 21.0),
    ("front", (), 21.5),
    ("hit", (2,), 22.0),         # fails to alternate: end of point
]


def main() -> None:
    clock = ManualClock()
    detector = CompositeEventDetector(clock=clock)
    raw_signals = []
    watch = detector.watch(
        END_OF_POINT, callback=lambda t, env: raw_signals.append(t)
    )
    # one scoreboard signal per point, however many conditions fired
    scoreboard = attach(Once(window=3.0), watch, tracker=detector.horizons)
    points = []
    scoreboard.on_signal = lambda t, env: points.append(t)

    for name, args, t in GAME:
        clock.set(t)
        detector.post(Event(name, args, timestamp=t, source="court"))
        detector.update_horizon("court", t)
    detector.update_horizon("court", 100.0)

    print(f"end-of-point conditions fired at: {sorted(set(raw_signals))}")
    print(f"scoreboard points (deduplicated): {points}")
    assert len(points) == 3, "three points were played"
    print("three points detected - scoreboard correct")


if __name__ == "__main__":
    main()
