#!/usr/bin/env python3
"""The global active badge system with secure event delivery (ch. 6-7).

Builds two badge sites (Cambridge and PARC), moves a badge between them
(the fig 6.2 inter-site protocol), detects composite events ("rjh21
enters a room", "two people together") and applies the chapter-7 event
security policy so a user may only monitor their own badge.

Run:  python examples/badge_tracking.py
"""

from repro import HostOS, OasisService, SimClock, Simulator
from repro.badge import Badge, BadgeWorld, Site
from repro.badge.intersite import SiteDirectory
from repro.errors import AccessDenied
from repro.events.composite.detector import CompositeEventDetector
from repro.events.model import Event, WILDCARD, template
from repro.security.admission import SecureEventBroker
from repro.security.erdl import parse_erdl

OWNERS = {"rjh21": "badge-rjh", "kgm": "badge-kgm"}


def main() -> None:
    sim = Simulator()
    clock = SimClock(sim)
    directory = SiteDirectory()
    cam = Site("cambridge", directory, clock=clock, simulator=sim)
    parc = Site("parc", directory, clock=clock, simulator=sim)

    world = BadgeWorld(sim)
    for room in ("T14", "T15", "Lounge"):
        world.add_room(room, "cambridge")
        cam.add_sensor(f"sensor-{room}", room)
    world.add_room("P1", "parc")
    parc.add_sensor("sensor-P1", "P1")
    cam.attach_hardware(world)
    parc.attach_hardware(world)

    for user, badge in OWNERS.items():
        world.add_badge(Badge(badge, "cambridge"))
        cam.register_home_badge(badge, user)

    # -- composite event detection ----------------------------------------------
    detector = CompositeEventDetector(clock=clock)
    detector.connect(cam.master.broker)
    detector.connect_database(cam.namer)

    detector.watch(
        '$Seen("badge-rjh", s1); Seen("badge-rjh", s2) - Seen("badge-rjh", s1)',
        callback=lambda t, env: print(f"[{t:5.1f}] rjh21 entered via {env['s2']}"),
    )
    detector.watch(
        '$Seen(a, r); $Seen(b, r) - Seen(a, r2) {b != a}',
        callback=lambda t, env: print(
            f"[{t:5.1f}] together in {env['r']}: {env['a']} and {env['b']}"
        ),
    )

    # MovedSite events from the home site
    session = cam.broker.establish_session(
        lambda e, h: print(f"[{sim.now:5.1f}] MovedSite: {e.args}") if e else None
    )
    cam.broker.register(session, template("MovedSite", WILDCARD, WILDCARD, WILDCARD))

    # heartbeats so `without` decisions resolve
    def beat():
        cam.heartbeat()
        parc.heartbeat()
        sim.schedule(1.0, beat)
    sim.schedule(0.5, beat)

    # -- the movement script -------------------------------------------------------
    world.move_at(1.0, "badge-rjh", "T14")
    world.move_at(2.0, "badge-kgm", "T14")     # together in T14
    world.move_at(4.0, "badge-rjh", "T15")
    world.move_at(6.0, "badge-rjh", "P1")      # inter-site move to PARC
    sim.run_until(12.0)

    print()
    print(f"home site knows location: {cam.location_of('badge-rjh')}")
    print(f"parc learned the owner:   {parc.namer.user_of('badge-rjh')}")

    # -- event security (chapter 7) --------------------------------------------------
    print("\n--- event security ---")
    oasis = OasisService("BadgeSec", clock=clock)
    oasis.add_rolefile("main", """
def LoggedOn(u)  u: string
def Admin(u)  u: string
LoggedOn(u) <-
Admin(u) <- : u == "root"
""")
    policy = parse_erdl("""
allow Admin(u) : Seen(b, s)
allow LoggedOn(u) : Seen(b, s) : owns(u, b)
""", predicates={"owns": lambda u, b: OWNERS.get(u) == b})
    secure = SecureEventBroker("secure-badges", oasis, policy)

    host = HostOS("ws")
    rjh = host.create_domain().client_id
    rjh_cert = oasis.enter_role(rjh, "LoggedOn", ("rjh21",))
    received = []
    session = secure.establish_session(
        lambda e, h: received.append(e) if e else None, rjh_cert
    )
    secure.register(session, template("Seen", WILDCARD, WILDCARD))
    secure.signal(Event("Seen", ("badge-rjh", "sensor-T14")))
    secure.signal(Event("Seen", ("badge-kgm", "sensor-T14")))
    print(f"rjh21 registered for all sightings; received only: "
          f"{[e.args for e in received]}")

    # a guest owns no badge: the session opens but the compiled filter
    # never permits a sighting (default deny)
    guest = host.create_domain().client_id
    guest_cert = oasis.enter_role(guest, "LoggedOn", ("guest",))
    guest_got = []
    guest_session = secure.establish_session(
        lambda e, h: guest_got.append(e) if e else None, guest_cert
    )
    secure.register(guest_session, template("Seen", WILDCARD, WILDCARD))
    secure.signal(Event("Seen", ("badge-rjh", "sensor-T15")))
    print(f"guest registered too; received: {guest_got} (default deny)")


if __name__ == "__main__":
    main()
